//! Process-coordination schemes for measuring MPI collectives.
//!
//! Three ways to decide *when* each repetition starts:
//!
//! 1. **Barrier-based** ([`run_barrier_scheme`]) — `MPI_Barrier` before
//!    every repetition (OSU / Intel MPI Benchmarks). Cheap, but the
//!    barrier's own exit imbalance leaks into the measurement when the
//!    operation under test is of comparable latency.
//! 2. **Window-based** ([`run_window_scheme`]) — processes agree on a
//!    grid of start times `t_sync + i·w` on a logical global clock
//!    (SKaMPI / NBCBench). Needs a good window-size estimate; a single
//!    outlier invalidates *all* subsequent windows it overlaps.
//! 3. **Round-Time** ([`run_round_time`]) — the paper's Algorithm 5:
//!    the reference broadcasts the *next* start time before every
//!    repetition and a fixed time slice bounds the total effort; an
//!    `MPI_Allreduce` of `invalid`/`out_of_time` flags after each round
//!    keeps everyone consistent and makes single outliers cost exactly
//!    one repetition.

use hcs_clock::{busy_wait_until, Clock, GlobalTime, Span};
use hcs_mpi::{BarrierAlgorithm, Comm, ReduceOp};
use hcs_sim::obs::ClockReadings;
use hcs_sim::{secs, RankCtx, Wire};

/// The operation under test, e.g. one `MPI_Allreduce` call.
pub type OpUnderTest<'a> = &'a mut dyn FnMut(&mut RankCtx, &mut Comm);

/// One measured repetition, in the clock frame of the coordinating
/// scheme (local clock for barrier-based, global clock otherwise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepSample {
    /// When this rank started the operation (for the window and
    /// Round-Time schemes this is the *common* start time).
    pub start: GlobalTime,
    /// When the operation returned on this rank.
    pub end: GlobalTime,
}

impl RepSample {
    /// This rank's local view of the operation latency.
    pub fn latency(&self) -> Span {
        self.end - self.start
    }
}

/// Barrier-based measurement: `nreps` repetitions, each preceded by an
/// `MPI_Barrier` with the given algorithm. Returns this rank's local
/// samples (timed with `clk`).
pub fn run_barrier_scheme(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    clk: &mut dyn Clock,
    barrier_alg: BarrierAlgorithm,
    nreps: usize,
    op: OpUnderTest,
) -> Vec<RepSample> {
    let mut out = Vec::with_capacity(nreps);
    for i in 0..nreps {
        comm.barrier(ctx, barrier_alg);
        let start = clk.get_time(ctx);
        if ctx.obs_on() {
            ctx.obs_enter_read(
                "scheme/barrier/rep",
                i as u32,
                ClockReadings::global(start.raw_seconds()),
            );
        }
        op(ctx, comm);
        let end = clk.get_time(ctx);
        if ctx.obs_on() {
            ctx.obs_exit_read(ClockReadings::global(end.raw_seconds()));
        }
        out.push(RepSample { start, end });
    }
    out
}

/// Configuration of the window-based scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Window size — must exceed the operation latency or most windows
    /// invalidate.
    pub window_s: Span,
    /// Number of windows (= attempted repetitions).
    pub nreps: usize,
    /// Slack between "now" and the first window start.
    pub first_window_slack_s: Span,
}

/// Result of the window scheme on this rank.
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// One sample per window (including invalid ones).
    pub samples: Vec<RepSample>,
    /// Whether *this rank* hit each window start in time. A repetition
    /// is globally valid only if every rank was on time — decided
    /// post-hoc (here via an allreduce so each rank knows).
    pub valid: Vec<bool>,
}

/// Window-based measurement over a logical global clock.
pub fn run_window_scheme(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    g_clk: &mut dyn Clock,
    cfg: WindowConfig,
    op: OpUnderTest,
) -> WindowOutcome {
    // Agree on the window grid: the root broadcasts the base time.
    let now = g_clk.get_time(ctx);
    let base = comm.bcast_time(ctx, 0, now + cfg.first_window_slack_s);
    let mut samples = Vec::with_capacity(cfg.nreps);
    let mut on_time = Vec::with_capacity(cfg.nreps);
    for i in 0..cfg.nreps {
        let start = base + i as f64 * cfg.window_s;
        let before = g_clk.get_time(ctx);
        let late = before > start;
        busy_wait_until(g_clk, ctx, start);
        if ctx.obs_on() {
            ctx.obs_enter_read(
                "scheme/window/rep",
                i as u32,
                ClockReadings::global(start.raw_seconds()),
            );
            if late {
                ctx.obs_note("window/late");
            }
        }
        op(ctx, comm);
        let end = g_clk.get_time(ctx);
        if ctx.obs_on() {
            ctx.obs_exit_read(ClockReadings::global(end.raw_seconds()));
        }
        samples.push(RepSample { start, end });
        on_time.push(!late);
    }
    // Validity is global: all ranks must have been on time.
    let mut valid = Vec::with_capacity(cfg.nreps);
    for &mine in &on_time {
        let ok = comm.allreduce_f64(ctx, if mine { 0.0 } else { 1.0 }, ReduceOp::F64LOr);
        valid.push(ok == 0.0);
    }
    WindowOutcome { samples, valid }
}

/// Configuration of the Round-Time scheme (paper Algorithm 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundTimeConfig {
    /// The time slice allotted to this measurement (the paper uses 5 s
    /// per message size on Titan).
    pub max_time_slice_s: Span,
    /// Upper bound on valid repetitions (`max_nrep`).
    pub max_nrep: usize,
    /// Slack factor `B ≥ 1` applied to the broadcast latency estimate
    /// when picking the next start time.
    pub slack_b: f64,
    /// Estimated latency of `MPI_Bcast` (from
    /// [`estimate_bcast_latency`]).
    pub bcast_latency_s: Span,
}

impl Default for RoundTimeConfig {
    fn default() -> Self {
        Self {
            max_time_slice_s: secs(1.0),
            max_nrep: 1000,
            slack_b: 3.0,
            bcast_latency_s: secs(50e-6),
        }
    }
}

/// Round-Time measurement (Algorithm 5). Returns this rank's *valid*
/// samples; all ranks return equally many (validity is agreed on by the
/// per-round allreduce).
pub fn run_round_time(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    g_clk: &mut dyn Clock,
    cfg: RoundTimeConfig,
    op: OpUnderTest,
) -> Vec<RepSample> {
    // Initial alignment: processes may reach this point at very
    // different times (the tree synchronization finishes leaves early).
    // ReproMPI separates phases with a barrier; here the global clock
    // itself provides the rendezvous — everyone waits for a first common
    // instant, which also anchors the time-slice accounting.
    let proposal = g_clk.get_time(ctx) + cfg.slack_b.max(2.0) * cfg.bcast_latency_s;
    let first = comm.bcast_time(ctx, 0, proposal);
    busy_wait_until(g_clk, ctx, first);
    let t_start = g_clk.get_time(ctx);
    let mut nrep = 0usize;
    let mut round = 0u32;
    let mut out = Vec::new();
    loop {
        // The reference picks and broadcasts the next start time.
        let proposal = g_clk.get_time(ctx) + cfg.slack_b * cfg.bcast_latency_s;
        let start_time = comm.bcast_time(ctx, 0, proposal);

        // Late processes invalidate this round.
        let mut invalid = g_clk.get_time(ctx) >= start_time;
        if !invalid {
            busy_wait_until(g_clk, ctx, start_time);
        }
        let t0 = g_clk.get_time(ctx);
        if ctx.obs_on() {
            ctx.obs_enter_read(
                "scheme/roundtime/rep",
                round,
                ClockReadings::global(t0.raw_seconds()),
            );
        }
        op(ctx, comm);
        let t1 = g_clk.get_time(ctx);
        if ctx.obs_on() {
            ctx.obs_exit_read(ClockReadings::global(t1.raw_seconds()));
        }
        round += 1;

        let out_of_time = t1 - t_start >= cfg.max_time_slice_s;
        // Single allreduce combining both flags (the paper's line 21),
        // encoded through the same `Wire` impl point-to-point uses.
        let flags = [
            if invalid { 1.0f64 } else { 0.0 },
            if out_of_time { 1.0f64 } else { 0.0 },
        ]
        .to_wire();
        let combined = comm.allreduce(ctx, flags.as_ref(), ReduceOp::F64LOr);
        let [inv, oot] = <[f64; 2]>::from_wire(&combined);
        invalid = inv != 0.0;
        let out_of_time = oot != 0.0;
        if ctx.obs_on() {
            if invalid {
                ctx.obs_note("roundtime/invalid");
            }
            if out_of_time {
                ctx.obs_note("roundtime/out_of_time");
            }
        }

        if !invalid {
            out.push(RepSample {
                start: t0.max(start_time),
                end: t1,
            });
            nrep += 1;
        }
        if out_of_time || nrep == cfg.max_nrep {
            break;
        }
    }
    out
}

/// Estimates the one-shot propagation latency of `MPI_Bcast` on this
/// communicator: the root broadcasts its clock reading; every rank
/// computes `its reading at receipt − root's reading at send` and the
/// maximum over ranks is averaged over `nreps` repetitions.
///
/// The differencing happens *across ranks*, so `g_clk` must be a
/// synchronized logical global clock (which the Round-Time scheme — the
/// consumer of this estimate — has anyway).
pub fn estimate_bcast_latency(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    g_clk: &mut dyn Clock,
    nreps: usize,
) -> Span {
    assert!(nreps > 0);
    let mut total = Span::ZERO;
    for _ in 0..nreps {
        comm.barrier(ctx, BarrierAlgorithm::Tree);
        let sent = if comm.rank() == 0 {
            g_clk.get_time(ctx)
        } else {
            GlobalTime::ZERO
        };
        let t_send = comm.bcast_time(ctx, 0, sent);
        let lat = (g_clk.get_time(ctx) - t_send).max(Span::ZERO);
        total += secs(comm.allreduce_f64(ctx, lat.seconds(), ReduceOp::F64Max));
    }
    total / nreps as f64
}

/// Estimates the latency of an `msize`-byte `MPI_Allreduce` (mean of
/// `nreps` barrier-separated calls, reduced to the max over ranks).
pub fn estimate_allreduce_latency(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    clk: &mut dyn Clock,
    msize: usize,
    nreps: usize,
) -> Span {
    assert!(nreps > 0);
    let payload = vec![0u8; msize];
    let mut total = Span::ZERO;
    for _ in 0..nreps {
        comm.barrier(ctx, BarrierAlgorithm::Tree);
        let t0 = clk.get_time(ctx);
        let _ = comm.allreduce(ctx, &payload, ReduceOp::ByteMax);
        total += clk.get_time(ctx) - t0;
    }
    secs(comm.allreduce_f64(ctx, (total / nreps as f64).seconds(), ReduceOp::F64Max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_clock::{LocalClock, TimeSource};
    use hcs_core::{ClockSync, Hca3};
    use hcs_sim::machines::testbed;

    fn allreduce_op(msize: usize) -> impl FnMut(&mut RankCtx, &mut Comm) {
        move |ctx, comm| {
            let payload = vec![0u8; msize];
            let _ = comm.allreduce(ctx, &payload, ReduceOp::ByteMax);
        }
    }

    #[test]
    fn barrier_scheme_returns_positive_latencies() {
        let cluster = testbed(2, 2).cluster(1);
        let res = cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut op = allreduce_op(8);
            run_barrier_scheme(
                ctx,
                &mut comm,
                &mut clk,
                BarrierAlgorithm::Tree,
                10,
                &mut op,
            )
        });
        for samples in res {
            assert_eq!(samples.len(), 10);
            for s in samples {
                assert!(s.latency() > Span::ZERO);
                assert!(s.latency() < secs(1e-3), "latency {:.3e}", s.latency());
            }
        }
    }

    #[test]
    fn round_time_produces_agreed_sample_counts() {
        let cluster = testbed(2, 2).cluster(2);
        let res = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(20, 5);
            let mut g = sync.sync_clocks(ctx, &mut comm, Box::new(clk));
            let cfg = RoundTimeConfig {
                max_time_slice_s: secs(0.02),
                max_nrep: 50,
                ..Default::default()
            };
            let mut op = allreduce_op(8);
            run_round_time(ctx, &mut comm, g.as_mut(), cfg, &mut op).len()
        });
        assert!(res.iter().all(|&n| n == res[0]), "{res:?}");
        assert!(res[0] > 0, "no valid repetitions");
    }

    #[test]
    fn round_time_respects_time_slice() {
        let cluster = testbed(2, 1).cluster(3);
        let res = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(20, 5);
            let mut g = sync.sync_clocks(ctx, &mut comm, Box::new(clk));
            let before = ctx.now();
            let cfg = RoundTimeConfig {
                max_time_slice_s: secs(0.05),
                max_nrep: usize::MAX,
                ..Default::default()
            };
            let mut op = allreduce_op(8);
            let n = run_round_time(ctx, &mut comm, g.as_mut(), cfg, &mut op).len();
            (n, ctx.now() - before)
        });
        for &(n, dur) in &res {
            assert!(n > 10, "expected many reps, got {n}");
            // Bounded by the slice plus one round.
            assert!(dur < secs(0.08), "duration {dur}");
        }
    }

    #[test]
    fn round_time_caps_at_max_nrep() {
        let cluster = testbed(2, 1).cluster(4);
        let res = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(20, 5);
            let mut g = sync.sync_clocks(ctx, &mut comm, Box::new(clk));
            let cfg = RoundTimeConfig {
                max_time_slice_s: secs(10.0),
                max_nrep: 7,
                ..Default::default()
            };
            let mut op = allreduce_op(8);
            run_round_time(ctx, &mut comm, g.as_mut(), cfg, &mut op).len()
        });
        assert!(res.iter().all(|&n| n == 7), "{res:?}");
    }

    #[test]
    fn window_scheme_validates_windows() {
        let cluster = testbed(2, 2).cluster(5);
        let res = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(20, 5);
            let mut g = sync.sync_clocks(ctx, &mut comm, Box::new(clk));
            // Generous window: everything should validate.
            let cfg = WindowConfig {
                window_s: secs(500e-6),
                nreps: 20,
                first_window_slack_s: secs(1e-3),
            };
            let mut op = allreduce_op(8);
            run_window_scheme(ctx, &mut comm, g.as_mut(), cfg, &mut op)
        });
        let valid = res[0].valid.iter().filter(|&&v| v).count();
        assert!(valid >= 18, "valid {valid}/20");
        // All ranks agree on validity.
        for r in &res[1..] {
            assert_eq!(r.valid, res[0].valid);
        }
    }

    #[test]
    fn too_small_windows_invalidate_in_cascades() {
        let cluster = testbed(2, 2).cluster(6);
        let res = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(20, 5);
            let mut g = sync.sync_clocks(ctx, &mut comm, Box::new(clk));
            // Window much smaller than the op latency: once a rank
            // overruns, subsequent windows invalidate.
            let cfg = WindowConfig {
                window_s: secs(3e-6),
                nreps: 20,
                first_window_slack_s: secs(1e-3),
            };
            let mut op = allreduce_op(64);
            run_window_scheme(ctx, &mut comm, g.as_mut(), cfg, &mut op)
        });
        let valid = res[0].valid.iter().filter(|&&v| v).count();
        assert!(
            valid <= 3,
            "tiny windows should mostly invalidate, got {valid} valid"
        );
    }

    #[test]
    fn latency_estimates_are_plausible() {
        let cluster = testbed(4, 1).cluster(7);
        let res = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(20, 5);
            let mut g = sync.sync_clocks(ctx, &mut comm, Box::new(clk));
            let b = estimate_bcast_latency(ctx, &mut comm, g.as_mut(), 10);
            let a = estimate_allreduce_latency(ctx, &mut comm, g.as_mut(), 8, 10);
            (b, a)
        });
        for &(b, a) in &res {
            // Inter-node base is 3.3 us; bcast over 4 ranks = 2 hops.
            assert!(b > secs(1e-6) && b < secs(100e-6), "bcast {b:.3e}");
            assert!(a > secs(3e-6) && a < secs(200e-6), "allreduce {a:.3e}");
            assert_eq!(res[0].0, b, "all ranks share the root's estimate");
        }
    }
}
