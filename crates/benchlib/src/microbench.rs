//! A minimal self-contained micro-benchmark harness.
//!
//! Replaces criterion for the workspace's `benches/` targets so the
//! repository builds with no external dependencies (offline
//! environments). The harness is deliberately simple: warm up once,
//! pick an iteration count that fills a target wall-clock budget, time
//! it as several sub-batches and report the fastest batch's mean per
//! iteration (a minimum is robust against one-sided scheduler/co-tenant
//! noise) plus an optional throughput rate, and optionally serialize
//! everything as JSON for tracked baselines (`BENCH_engine.json`).
//!
//! Environment knobs:
//!
//! - `HCS_BENCH_TARGET_MS` — wall-clock budget per case (default 300).
//! - `HCS_BENCH_MAX_ITERS` — iteration cap per case (default 1000).

use std::time::Instant;

/// Result of one benchmark case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Benchmark group (e.g. `engine_pingpong`).
    pub group: String,
    /// Case id within the group (e.g. `p32`).
    pub case: String,
    /// Timed iterations.
    pub iters: u64,
    /// Mean wall-clock seconds per iteration.
    pub mean_s: f64,
    /// Optional throughput: (units per iteration, unit label).
    pub units_per_iter: Option<(f64, &'static str)>,
}

impl CaseResult {
    /// Throughput in units/second, if the case declared units.
    pub fn rate(&self) -> Option<f64> {
        self.units_per_iter.map(|(n, _)| n / self.mean_s)
    }
}

/// Collects and times benchmark cases; prints a table and can emit JSON.
pub struct Runner {
    target_s: f64,
    max_iters: u64,
    group_filter: Option<String>,
    results: Vec<CaseResult>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runner {
    /// A runner configured from the environment (see module docs).
    pub fn from_env() -> Self {
        let target_ms = std::env::var("HCS_BENCH_TARGET_MS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(300.0);
        let max_iters = std::env::var("HCS_BENCH_MAX_ITERS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(1000);
        Self {
            target_s: target_ms * 1e-3,
            max_iters,
            group_filter: None,
            results: Vec::new(),
        }
    }

    /// Restricts subsequent cases to groups whose name starts with
    /// `prefix`. Filtered-out cases are skipped entirely — not run, not
    /// recorded, not serialized — so `--group` on the bench binaries
    /// can re-measure one group (or smoke-test a subset in CI) without
    /// paying for the whole suite. Skipped cases return `f64::NAN` from
    /// [`Runner::case`] and friends.
    pub fn set_group_filter(&mut self, prefix: &str) {
        self.group_filter = Some(prefix.to_string());
    }

    /// Times `f`, printing one progress line, and records the result.
    /// Returns the mean seconds per iteration.
    pub fn case<R>(&mut self, group: &str, case: &str, f: impl FnMut() -> R) -> f64 {
        self.case_with_units(group, case, None, f)
    }

    /// Like [`Runner::case`], with a throughput declaration: each
    /// iteration processes `units` of `unit` (e.g. 2000 of `"msgs"`).
    pub fn case_throughput<R>(
        &mut self,
        group: &str,
        case: &str,
        units: f64,
        unit: &'static str,
        f: impl FnMut() -> R,
    ) -> f64 {
        self.case_with_units(group, case, Some((units, unit)), f)
    }

    fn case_with_units<R>(
        &mut self,
        group: &str,
        case: &str,
        units_per_iter: Option<(f64, &'static str)>,
        mut f: impl FnMut() -> R,
    ) -> f64 {
        if let Some(prefix) = &self.group_filter {
            if !group.starts_with(prefix.as_str()) {
                return f64::NAN;
            }
        }

        // Warm-up iteration doubles as the calibration probe.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let probe = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((self.target_s / probe) as u64).clamp(1, self.max_iters);

        // Best-of-K batches: the budget is split into sub-batches and
        // the fastest batch mean is reported. External disturbances
        // (scheduler preemption, co-tenant noise) only ever slow a
        // batch down, so the minimum is the least-disturbed estimate —
        // the noise floor a one-shot mean cannot reach.
        const BATCHES: u64 = 5;
        let per_batch = (iters / BATCHES).max(1);
        let mut total_iters = 0u64;
        let mut mean_s = f64::INFINITY;
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            mean_s = mean_s.min(t0.elapsed().as_secs_f64() / per_batch as f64);
            total_iters += per_batch;
            if total_iters >= self.max_iters {
                break;
            }
        }
        let iters = total_iters;

        let result = CaseResult {
            group: group.to_string(),
            case: case.to_string(),
            iters,
            mean_s,
            units_per_iter,
        };
        match result.rate() {
            Some(rate) => println!(
                "{group}/{case}: {:>12.3} us/iter  {:>14.0} {}/s  ({iters} iters)",
                mean_s * 1e6,
                rate,
                units_per_iter.unwrap().1,
            ),
            None => println!(
                "{group}/{case}: {:>12.3} us/iter  ({iters} iters)",
                mean_s * 1e6
            ),
        }
        self.results.push(result);
        mean_s
    }

    /// All recorded results, in execution order.
    pub fn results(&self) -> &[CaseResult] {
        &self.results
    }

    /// Serializes all results as a JSON document (stable key order).
    pub fn to_json(&self, bench_name: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{bench_name}\",\n"));
        out.push_str("  \"cases\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"group\": \"{}\", ", r.group));
            out.push_str(&format!("\"case\": \"{}\", ", r.case));
            out.push_str(&format!("\"iters\": {}, ", r.iters));
            out.push_str(&format!("\"mean_s\": {:e}", r.mean_s));
            if let (Some((n, unit)), Some(rate)) = (r.units_per_iter, r.rate()) {
                out.push_str(&format!(
                    ", \"units_per_iter\": {n}, \"unit\": \"{unit}\", \"rate_per_s\": {rate:.1}"
                ));
            }
            out.push_str(if i + 1 < self.results.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_records_sane_numbers() {
        std::env::set_var("HCS_BENCH_TARGET_MS", "1");
        let mut r = Runner::from_env();
        let mean = r.case_throughput("g", "c", 10.0, "ops", || {
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert!(mean > 0.0);
        let res = &r.results()[0];
        assert_eq!(res.group, "g");
        assert!(res.iters >= 1);
        assert!(res.rate().unwrap() > 0.0);
    }

    #[test]
    fn group_filter_skips_non_matching_cases_entirely() {
        std::env::set_var("HCS_BENCH_TARGET_MS", "1");
        let mut r = Runner::from_env();
        r.set_group_filter("engine_runs");
        let mut ran = false;
        let skipped = r.case("engine_pingpong", "1000", || ran = true);
        assert!(!ran, "filtered case must not execute its body");
        assert!(skipped.is_nan());
        r.case("engine_runs", "p16384", || 1);
        r.case("engine_runs_pooled", "p32", || 1);
        let groups: Vec<&str> = r.results().iter().map(|c| c.group.as_str()).collect();
        assert_eq!(groups, ["engine_runs", "engine_runs_pooled"]);
        assert!(!r.to_json("engine").contains("engine_pingpong"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        std::env::set_var("HCS_BENCH_TARGET_MS", "1");
        let mut r = Runner::from_env();
        r.case("g", "a", || 1);
        r.case_throughput("g", "b", 5.0, "msgs", || 2);
        let json = r.to_json("engine");
        assert!(json.contains("\"bench\": \"engine\""));
        assert!(json.contains("\"group\": \"g\""));
        assert!(json.contains("\"rate_per_s\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
