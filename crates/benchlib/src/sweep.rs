//! Deterministic parallel sweep execution.
//!
//! Every paper figure is produced from a sweep of *independent*
//! simulated mpiruns — `nmpiruns` repetitions × message sizes ×
//! algorithm configurations. The engine parallelizes *within* one run
//! (one OS thread per rank), but a `p`-rank run keeps at most a couple
//! of ranks runnable at a time for the algorithms under study, so
//! sequential drivers leave most host cores idle. [`SweepExecutor`]
//! runs the sweep's points concurrently across a bounded number of
//! in-flight clusters while keeping every artifact *byte-identical* to
//! the sequential path:
//!
//! - **Per-run seed streams.** A repetition's master seed is derived
//!   from the sweep seed and its submission index via
//!   [`Pcg64::stream`] (see [`run_seed`]) — a pure function of the
//!   pair, so a run's randomness never depends on which worker picks
//!   it up or in what order runs finish.
//! - **Ordered collection.** Each run writes its result into the slot
//!   of its submission index; [`SweepExecutor::run`] returns the slots
//!   in submission order. CSV/stdout rendering happens after
//!   collection, in that order, exactly as the sequential loops did.
//! - **Deterministic runs.** Each point is simulated by the
//!   virtual-time engine, which is bit-reproducible regardless of host
//!   scheduling — concurrency adds no nondeterminism *inside* a run
//!   either.
//!
//! Concurrency is oversubscription-aware: the default budget is
//! `max(1, available_parallelism / p_per_run)` (each in-flight run
//! already owns `p` rank threads), overridable with `--jobs` on the
//! experiment binaries or the `HCS_JOBS` environment variable. The
//! executor coordinates with the global [`ClusterPool`]: each executor
//! thread pins itself to its own pool shard via
//! [`ClusterPool::with_shard`], so concurrent jobs dispatch through
//! independent queue locks and worker sets instead of contending on
//! shared pool state, and the pool is trimmed back down when the sweep
//! finishes. The in-flight degree is additionally clamped to the host
//! core count — beyond that, extra executor threads only interleave
//! run working sets on the same cores (cache evictions, no speedup).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hcs_sim::lockutil::lock_ignore_poison;
use hcs_sim::rngx::Pcg64;
use hcs_sim::{ClusterPool, MachineSpec, RankCtx};

/// Master seed of run `index` within a sweep seeded `seed0`: the first
/// output of [`Pcg64::stream`]`(seed0, index)`. A pure function of the
/// pair — results can never depend on execution interleaving.
pub fn run_seed(seed0: u64, index: u64) -> u64 {
    Pcg64::stream(seed0, index).next_u64()
}

/// Default concurrency budget for runs of `p_per_run` ranks:
/// `max(1, available_parallelism / p_per_run)`. Conservative by
/// design — it assumes every rank thread of an in-flight run is
/// runnable, which holds for communication-dense workloads.
pub fn auto_jobs(p_per_run: usize) -> usize {
    // This is the blessed host-introspection site of the workspace
    // (xtask lint `determinism/host-parallelism`): host parallelism
    // may inform *scheduling* here, never simulated results.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / p_per_run.max(1)).max(1)
}

/// The `HCS_JOBS` environment override, if set to a positive integer.
pub fn env_jobs() -> Option<usize> {
    std::env::var("HCS_JOBS")
        .ok()?
        .parse()
        .ok()
        .filter(|&j| j > 0)
}

/// Result slot of one submitted run (filled by whichever worker
/// executes it, drained in submission order).
type Slot<T> = Mutex<Option<std::thread::Result<T>>>;

/// A deterministic parallel runner for sweeps of independent runs.
pub struct SweepExecutor {
    jobs: usize,
}

impl SweepExecutor {
    /// An executor with a fixed concurrency budget (clamped to ≥ 1).
    /// `new(1)` is the sequential path: a plain ordered loop on the
    /// calling thread, no executor threads, no pool reservation.
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// Resolves the budget for `p_per_run`-rank runs from, in order of
    /// precedence: an explicit `--jobs` flag value, the `HCS_JOBS`
    /// environment variable, then [`auto_jobs`].
    pub fn from_env(flag: Option<usize>, p_per_run: usize) -> Self {
        let jobs = flag
            .or_else(env_jobs)
            .unwrap_or_else(|| auto_jobs(p_per_run));
        Self::new(jobs)
    }

    /// The concurrency budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes runs `0..n_runs` (each of `p_per_run` simulated ranks)
    /// and returns their results **in submission order**.
    ///
    /// `f` must derive everything run-dependent from its index (point
    /// parameters, and seeds via [`run_seed`]); then the result vector
    /// is identical for every jobs setting, which is what the
    /// determinism tests pin.
    ///
    /// A panicking run does not poison its siblings: remaining runs
    /// still execute, every lease returns to the pool, and the first
    /// panic *by submission order* is re-thrown after the sweep drains
    /// — again matching what the sequential path would have reported.
    pub fn run<T, F>(&self, n_runs: usize, p_per_run: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let jobs = self.jobs.min(n_runs).max(1);
        if jobs <= 1 {
            return (0..n_runs).map(f).collect();
        }
        // Oversubscription clamp (with `auto_jobs`, a blessed
        // host-introspection site — lint `determinism/host-parallelism`):
        // more in-flight runs than host cores buys no parallelism, it
        // only interleaves the runs' working sets on the same silicon —
        // context switches plus cache evictions, the p256_jobs4
        // regression in miniature. The `jobs` knob is a budget; the
        // host caps the in-flight degree. Results are unaffected: run
        // `i`'s output is a pure function of its submission index.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let in_flight = jobs.min(cores);

        let pool = ClusterPool::global();
        let next = AtomicUsize::new(0);
        let slots: Vec<Slot<T>> = (0..n_runs).map(|_| Mutex::new(None)).collect();
        let job_loop = |shard: usize| {
            // Pin each executor thread to its own pool shard:
            // concurrent jobs then dispatch through independent queue
            // locks and worker sets, so they never contend on (or
            // false-share) each other's pool state. The shard choice is
            // pure scheduling — run `i` still derives all randomness
            // from its submission index.
            ClusterPool::with_shard(shard, || loop {
                // atomics: work-stealing ticket counter. fetch_add is a
                // full RMW, so every run index is claimed exactly once;
                // the slot write it guards is published by the slot's
                // own mutex, not by this counter's ordering.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_runs {
                    break;
                }
                let out = catch_unwind(AssertUnwindSafe(|| f(i)));
                *lock_ignore_poison(&slots[i]) = Some(out);
            })
        };
        if in_flight <= 1 {
            // Single-core host: same slot-and-drain semantics (a
            // panicking run still lets its siblings complete), no
            // executor threads.
            job_loop(0);
        } else {
            std::thread::scope(|scope| {
                for job in 0..in_flight {
                    let job_loop = &job_loop;
                    scope.spawn(move || job_loop(job));
                }
            });
        }
        // The sweep is over: release surplus workers, keeping at most
        // this sweep's worst-case footprint parked for whatever runs
        // next (the lazy pool usually has far fewer idle anyway).
        pool.trim(jobs * p_per_run);

        let mut out = Vec::with_capacity(n_runs);
        let mut first_panic = None;
        for (i, slot) in slots.into_iter().enumerate() {
            let result = lock_ignore_poison(&slot)
                .take()
                .unwrap_or_else(|| panic!("sweep run {i} was never executed"));
            match result {
                Ok(v) => out.push(v),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    }
}

/// Runs one independent cluster simulation per point of a sweep and
/// returns the per-rank results, in point order.
///
/// This is the shared seam for the scheme-comparison binaries (fig7,
/// fig9, guidelines, reprompi, tuner): each point builds a fresh
/// cluster from `machine` with `seed_of(point, index)` and executes
/// `body` on every rank. `seed_of` must be a pure function of its
/// arguments; points that should share a machine realization (e.g.
/// suites compared at the same message size) simply map to the same
/// seed.
pub fn run_cluster_sweep<P, R, F, S>(
    exec: &SweepExecutor,
    machine: &MachineSpec,
    points: &[P],
    seed_of: S,
    body: F,
) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    S: Fn(&P, usize) -> u64 + Sync,
    F: Fn(&P, &mut RankCtx) -> R + Sync,
{
    let p = machine.topology.total_cores();
    exec.run(points.len(), p, |i| {
        let point = &points[i];
        machine
            .cluster(seed_of(point, i))
            .run(|ctx| body(point, ctx))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_sim::machines;

    fn pingpong_times(p: usize, seed: u64) -> Vec<hcs_sim::SimTime> {
        let cluster = machines::testbed(p.div_ceil(2), 2).cluster(seed);
        cluster.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_t(1, 7, 1.5f64);
                let _: f64 = ctx.recv_t(1, 7);
            } else if ctx.rank() == 1 {
                let v: f64 = ctx.recv_t(0, 7);
                ctx.send_t(0, 7, v);
            }
            ctx.now()
        })
    }

    #[test]
    fn results_are_in_submission_order_for_any_jobs_setting() {
        let sequential =
            SweepExecutor::new(1).run(6, 4, |i| pingpong_times(4, run_seed(11, i as u64)));
        for jobs in [2, 4, 8] {
            let parallel =
                SweepExecutor::new(jobs).run(6, 4, |i| pingpong_times(4, run_seed(11, i as u64)));
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn panicking_run_does_not_poison_siblings_or_leak_leases() {
        let exec = SweepExecutor::new(3);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.run(6, 2, |i| {
                if i == 2 {
                    panic!("deliberate failure in run {i}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                pingpong_times(2, run_seed(13, i as u64))
            })
        }));
        let msg = *result
            .expect_err("sweep must re-throw the run panic")
            .downcast::<String>()
            .expect("panic payload");
        assert!(msg.contains("deliberate failure in run 2"), "{msg}");
        // Every sibling still ran to completion.
        assert_eq!(completed.load(Ordering::Relaxed), 5);
        // The pool still serves a follow-up sweep (no leaked leases,
        // no dead workers).
        let again = exec.run(4, 2, |i| pingpong_times(2, run_seed(13, i as u64)));
        assert_eq!(again.len(), 4);
    }

    #[test]
    fn run_seed_is_a_pure_function_of_sweep_seed_and_index() {
        assert_eq!(run_seed(1, 0), run_seed(1, 0));
        assert_ne!(run_seed(1, 0), run_seed(1, 1));
        assert_ne!(run_seed(1, 0), run_seed(2, 0));
    }

    #[test]
    fn from_env_prefers_explicit_flag() {
        assert_eq!(SweepExecutor::from_env(Some(3), 1024).jobs(), 3);
        // Zero-clamped to the sequential path.
        assert_eq!(SweepExecutor::new(0).jobs(), 1);
    }
}
