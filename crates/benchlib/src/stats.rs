//! Summary statistics for latency samples.

/// Summary of a sample set (all values in the sample's unit, typically
/// seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower-middle for even n).
    pub median: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for n < 2).
    pub sd: f64,
}

impl Summary {
    /// Computes the summary of `xs`.
    ///
    /// # Panics
    /// Panics on an empty slice or non-finite values.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample set");
        assert!(xs.iter().all(|x| x.is_finite()), "non-finite sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[(n - 1) / 2];
        let min = sorted[0];
        let max = sorted[n - 1];
        let sd = if n < 2 {
            0.0
        } else {
            (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        Self {
            n,
            mean,
            median,
            min,
            max,
            sd,
        }
    }

    /// Percentile in `[0, 100]` by nearest-rank.
    pub fn percentile(xs: &[f64], p: f64) -> f64 {
        assert!(!xs.is_empty(), "percentile of empty sample set");
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    }
}

/// A fixed-bin histogram (for imbalance/latency distributions like the
/// paper's Fig. 8 box plots).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    /// Samples below `lo` / above `hi`.
    outliers: (usize, usize),
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics on an empty range or zero bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram needs hi > lo");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: (0, 0),
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.outliers.0 += 1;
        } else if x >= self.hi {
            self.outliers.1 += 1;
        } else {
            let nbins = self.counts.len();
            let bin = ((x - self.lo) / (self.hi - self.lo) * nbins as f64) as usize;
            self.counts[bin.min(nbins - 1)] += 1;
        }
    }

    /// Adds every sample of a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// `(below-range, above-range)` sample counts.
    pub fn outliers(&self) -> (usize, usize) {
        self.outliers
    }

    /// Renders the histogram as fixed-width text rows
    /// `lo..hi | ####### count`, scaled to `width` characters.
    pub fn render(&self, width: usize, unit_scale: f64, unit: &str) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let bin_w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = (self.lo + i as f64 * bin_w) * unit_scale;
            let hi = (self.lo + (i + 1) as f64 * bin_w) * unit_scale;
            let bar = "#".repeat(c * width / max);
            out.push_str(&format!("{lo:>8.1}..{hi:<8.1}{unit} |{bar:<width$}| {c}\n"));
        }
        if self.outliers.1 > 0 {
            out.push_str(&format!("{:>8} above range: {}\n", "", self.outliers.1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(Summary::percentile(&xs, 0.0), 0.0);
        assert_eq!(Summary::percentile(&xs, 50.0), 50.0);
        assert_eq!(Summary::percentile(&xs, 100.0), 100.0);
        assert_eq!(Summary::percentile(&xs, 95.0), 95.0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add_all(&[0.5, 1.0, 2.5, 9.99, -1.0, 10.0, 55.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), (1, 2));
    }

    #[test]
    fn histogram_renders_rows() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add_all(&[0.1, 0.2, 1.5]);
        let txt = h.render(10, 1.0, "s");
        assert_eq!(txt.lines().count(), 2);
        assert!(txt.contains("##"));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_panics() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }
}
