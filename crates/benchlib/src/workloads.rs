//! Synthetic workloads, chiefly the **AMG2013 proxy** used for the
//! tracing case study (paper §V-C, Fig. 10).
//!
//! The paper profiles the DOE mini-app AMG2013 (inputs N=40, P=6),
//! which spends ~80 % of its time in 8-byte `MPI_Allreduce` calls. The
//! proxy reproduces the communication/timing structure that matters for
//! the Gantt-chart case study: iterations of *imbalanced* local compute
//! (a rank-dependent base plus random per-iteration noise) followed by a
//! small allreduce — without carrying the actual algebraic multigrid
//! solver along.

use hcs_clock::{Clock, Span};
use hcs_mpi::{Comm, ReduceOp};
use hcs_sim::rngx::{self, label};
use hcs_sim::{secs, RankCtx};

use crate::trace::Tracer;

/// Parameters of the AMG proxy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmgProxyConfig {
    /// Number of solver iterations (each ends in one allreduce).
    pub iterations: u32,
    /// Allreduce payload, bytes (AMG2013: 8 B).
    pub msize: usize,
    /// Mean local compute per iteration.
    pub compute_mean_s: Span,
    /// Relative rank-dependent compute imbalance (0.2 = ±20 %).
    pub imbalance: f64,
    /// Relative random per-iteration compute noise.
    pub noise: f64,
}

impl Default for AmgProxyConfig {
    fn default() -> Self {
        Self {
            iterations: 20,
            msize: 8,
            compute_mean_s: secs(150e-6),
            imbalance: 0.25,
            noise: 0.1,
        }
    }
}

/// Runs the AMG proxy, tracing every allreduce with `trace_clk` (which
/// may be a raw local clock or a synchronized global clock — that is
/// the whole point of Fig. 10). Returns this rank's tracer.
pub fn amg_proxy(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    trace_clk: &mut dyn Clock,
    cfg: AmgProxyConfig,
) -> Tracer {
    let mut tracer = Tracer::new();
    let mut rng = rngx::stream_rng(ctx.master_seed(), label::rank_workload(ctx.rank()));
    // Deterministic rank-dependent imbalance factor in [1-i, 1+i].
    let spread = if comm.size() > 1 {
        comm.rank() as f64 / (comm.size() - 1) as f64 * 2.0 - 1.0
    } else {
        0.0
    };
    let my_base = cfg.compute_mean_s * (1.0 + cfg.imbalance * spread);
    let payload = vec![0u8; cfg.msize];
    for iter in 0..cfg.iterations {
        let noise = 1.0 + cfg.noise * (rng.next_f64() * 2.0 - 1.0);
        ctx.compute((my_base * noise).max(Span::ZERO));
        let enter = trace_clk.get_time(ctx);
        let _ = comm.allreduce(ctx, &payload, ReduceOp::ByteMax);
        let exit = trace_clk.get_time(ctx);
        // Trace events store frame-agnostic raw readings of `trace_clk`.
        tracer.record(iter, enter.raw_seconds(), exit.raw_seconds());
    }
    tracer
}

/// Parameters of the halo-exchange (stencil) proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloProxyConfig {
    /// Iterations.
    pub iterations: u32,
    /// Halo message size per neighbor, bytes.
    pub halo_bytes: usize,
    /// Mean local compute per iteration.
    pub compute_mean_s: Span,
    /// Residual allreduce every `k` iterations (0 = never).
    pub allreduce_every: u32,
}

impl Default for HaloProxyConfig {
    fn default() -> Self {
        Self {
            iterations: 20,
            halo_bytes: 1024,
            compute_mean_s: secs(120e-6),
            allreduce_every: 4,
        }
    }
}

/// A 1-D stencil proxy: each iteration exchanges halos with both ring
/// neighbors (eager send + two receives, like `MPI_Sendrecv` pairs) and
/// periodically runs a residual allreduce — the other common
/// communication pattern of the DOE mini-apps the paper motivates with.
/// Traces the halo phase per iteration with `trace_clk`.
pub fn halo_proxy(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    trace_clk: &mut dyn Clock,
    cfg: HaloProxyConfig,
) -> Tracer {
    let mut tracer = Tracer::new();
    let mut rng = rngx::stream_rng(ctx.master_seed(), label::rank_workload(ctx.rank()) ^ 0xA10);
    let p = comm.size();
    let me = comm.rank();
    let left = (me + p - 1) % p;
    let right = (me + 1) % p;
    let halo = vec![0u8; cfg.halo_bytes];
    const TAG_L: u32 = 0x300;
    const TAG_R: u32 = 0x301;
    for iter in 0..cfg.iterations {
        let noise = 1.0 + 0.15 * (rng.next_f64() * 2.0 - 1.0);
        ctx.compute(cfg.compute_mean_s * noise);
        let enter = trace_clk.get_time(ctx);
        if p > 1 {
            // Exchange with both neighbors (eager sends first, so the
            // pattern is deadlock-free like MPI_Sendrecv).
            comm.send(ctx, right, TAG_R, &halo);
            comm.send(ctx, left, TAG_L, &halo);
            let _ = comm.recv(ctx, left, TAG_R);
            let _ = comm.recv(ctx, right, TAG_L);
        }
        if cfg.allreduce_every > 0 && iter % cfg.allreduce_every == 0 {
            let _ = comm.allreduce(ctx, &[0u8; 8], ReduceOp::ByteMax);
        }
        let exit = trace_clk.get_time(ctx);
        tracer.record(iter, enter.raw_seconds(), exit.raw_seconds());
    }
    tracer
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_clock::{LocalClock, TimeSource};
    use hcs_sim::machines::testbed;

    #[test]
    fn proxy_records_every_iteration() {
        let cluster = testbed(2, 2).cluster(1);
        let res = cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let cfg = AmgProxyConfig {
                iterations: 10,
                ..Default::default()
            };
            amg_proxy(ctx, &mut comm, &mut clk, cfg).events().len()
        });
        assert!(res.iter().all(|&n| n == 10));
    }

    #[test]
    fn allreduce_dominates_wait_time_for_fast_ranks() {
        // The slowest rank arrives last; fast ranks' allreduce time
        // includes waiting for it, so their traced durations exceed the
        // slow rank's.
        let cluster = testbed(2, 2).cluster(2);
        let res = cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let cfg = AmgProxyConfig {
                iterations: 8,
                compute_mean_s: secs(300e-6),
                imbalance: 0.5,
                noise: 0.0,
                ..Default::default()
            };
            let tr = amg_proxy(ctx, &mut comm, &mut clk, cfg);
            tr.events().iter().map(|e| e.duration()).sum::<f64>() / tr.events().len() as f64
        });
        // Rank 0 (fastest compute) waits longest inside the allreduce;
        // the last rank (slowest) waits least.
        assert!(
            res[0] > res[3],
            "fast rank {:.3e} vs slow rank {:.3e}",
            res[0],
            res[3]
        );
    }

    #[test]
    fn halo_proxy_runs_and_records() {
        let cluster = testbed(3, 2).cluster(6);
        let res = cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let cfg = HaloProxyConfig {
                iterations: 12,
                ..Default::default()
            };
            let tr = halo_proxy(ctx, &mut comm, &mut clk, cfg);
            (tr.events().len(), ctx.counters().sent_msgs)
        });
        for &(n, sent) in &res {
            assert_eq!(n, 12);
            // 2 halo sends per iteration + allreduce traffic.
            assert!(sent >= 24, "sent {sent}");
        }
    }

    #[test]
    fn halo_proxy_single_rank_degenerates_gracefully() {
        let cluster = testbed(1, 1).cluster(7);
        cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let tr = halo_proxy(ctx, &mut comm, &mut clk, HaloProxyConfig::default());
            assert_eq!(tr.events().len(), 20);
        });
    }

    #[test]
    fn proxy_is_deterministic() {
        let run = || {
            testbed(2, 1).cluster(5).run(|ctx| {
                let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
                let mut comm = Comm::world(ctx);
                let tr = amg_proxy(ctx, &mut comm, &mut clk, AmgProxyConfig::default());
                tr.events().last().map(|e| e.exit)
            })
        };
        assert_eq!(run(), run());
    }
}
