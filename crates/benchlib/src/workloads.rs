//! Synthetic workloads, chiefly the **AMG2013 proxy** used for the
//! tracing case study (paper §V-C, Fig. 10).
//!
//! The paper profiles the DOE mini-app AMG2013 (inputs N=40, P=6),
//! which spends ~80 % of its time in 8-byte `MPI_Allreduce` calls. The
//! proxy reproduces the communication/timing structure that matters for
//! the Gantt-chart case study: iterations of *imbalanced* local compute
//! (a rank-dependent base plus random per-iteration noise) followed by a
//! small allreduce — without carrying the actual algebraic multigrid
//! solver along.

use hcs_clock::{Clock, Span};
use hcs_mpi::{Comm, ReduceOp};
use hcs_sim::obs::ClockReadings;
use hcs_sim::rngx::{self, label};
use hcs_sim::{secs, RankCtx};

/// Span name of the AMG proxy's per-iteration allreduce (see
/// [`crate::trace::per_rank_events`]).
pub const AMG_SPAN: &str = "amg/allreduce";

/// Span name of the halo proxy's per-iteration exchange phase.
pub const HALO_SPAN: &str = "halo/exchange";

/// Parameters of the AMG proxy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmgProxyConfig {
    /// Number of solver iterations (each ends in one allreduce).
    pub iterations: u32,
    /// Allreduce payload, bytes (AMG2013: 8 B).
    pub msize: usize,
    /// Mean local compute per iteration.
    pub compute_mean_s: Span,
    /// Relative rank-dependent compute imbalance (0.2 = ±20 %).
    pub imbalance: f64,
    /// Relative random per-iteration compute noise.
    pub noise: f64,
}

impl Default for AmgProxyConfig {
    fn default() -> Self {
        Self {
            iterations: 20,
            msize: 8,
            compute_mean_s: secs(150e-6),
            imbalance: 0.25,
            noise: 0.1,
        }
    }
}

/// Runs the AMG proxy, tracing every allreduce with `trace_clk` (which
/// may be a raw local clock or a synchronized global clock — that is
/// the whole point of Fig. 10). Each allreduce is wrapped in an
/// [`AMG_SPAN`] observability span carrying the traced-clock readings;
/// retrieve the per-rank trace after the run with
/// [`crate::trace::per_rank_events`]. The clock reads happen whether or
/// not observability is on, so the timeline is identical either way.
pub fn amg_proxy(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    trace_clk: &mut dyn Clock,
    cfg: AmgProxyConfig,
) {
    let mut rng = rngx::stream_rng(ctx.master_seed(), label::rank_workload(ctx.rank()));
    // Deterministic rank-dependent imbalance factor in [1-i, 1+i].
    let spread = if comm.size() > 1 {
        comm.rank() as f64 / (comm.size() - 1) as f64 * 2.0 - 1.0
    } else {
        0.0
    };
    let my_base = cfg.compute_mean_s * (1.0 + cfg.imbalance * spread);
    let payload = vec![0u8; cfg.msize];
    for iter in 0..cfg.iterations {
        let noise = 1.0 + cfg.noise * (rng.next_f64() * 2.0 - 1.0);
        ctx.compute((my_base * noise).max(Span::ZERO));
        let enter = trace_clk.get_time(ctx);
        if ctx.obs_on() {
            // Spans store frame-agnostic raw readings of `trace_clk`.
            ctx.obs_enter_read(AMG_SPAN, iter, ClockReadings::global(enter.raw_seconds()));
        }
        let _ = comm.allreduce(ctx, &payload, ReduceOp::ByteMax);
        let exit = trace_clk.get_time(ctx);
        if ctx.obs_on() {
            ctx.obs_exit_read(ClockReadings::global(exit.raw_seconds()));
        }
    }
}

/// Parameters of the halo-exchange (stencil) proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloProxyConfig {
    /// Iterations.
    pub iterations: u32,
    /// Halo message size per neighbor, bytes.
    pub halo_bytes: usize,
    /// Mean local compute per iteration.
    pub compute_mean_s: Span,
    /// Residual allreduce every `k` iterations (0 = never).
    pub allreduce_every: u32,
}

impl Default for HaloProxyConfig {
    fn default() -> Self {
        Self {
            iterations: 20,
            halo_bytes: 1024,
            compute_mean_s: secs(120e-6),
            allreduce_every: 4,
        }
    }
}

/// A 1-D stencil proxy: each iteration exchanges halos with both ring
/// neighbors (eager send + two receives, like `MPI_Sendrecv` pairs) and
/// periodically runs a residual allreduce — the other common
/// communication pattern of the DOE mini-apps the paper motivates with.
/// Traces the halo phase per iteration with `trace_clk`, recorded as
/// [`HALO_SPAN`] observability spans like [`amg_proxy`] does.
pub fn halo_proxy(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    trace_clk: &mut dyn Clock,
    cfg: HaloProxyConfig,
) {
    let mut rng = rngx::stream_rng(ctx.master_seed(), label::rank_workload(ctx.rank()) ^ 0xA10);
    let p = comm.size();
    let me = comm.rank();
    let left = (me + p - 1) % p;
    let right = (me + 1) % p;
    let halo = vec![0u8; cfg.halo_bytes];
    const TAG_L: u32 = 0x300;
    const TAG_R: u32 = 0x301;
    for iter in 0..cfg.iterations {
        let noise = 1.0 + 0.15 * (rng.next_f64() * 2.0 - 1.0);
        ctx.compute(cfg.compute_mean_s * noise);
        let enter = trace_clk.get_time(ctx);
        if ctx.obs_on() {
            ctx.obs_enter_read(HALO_SPAN, iter, ClockReadings::global(enter.raw_seconds()));
        }
        if p > 1 {
            // Exchange with both neighbors (eager sends first, so the
            // pattern is deadlock-free like MPI_Sendrecv).
            comm.send(ctx, right, TAG_R, &halo);
            comm.send(ctx, left, TAG_L, &halo);
            let _ = comm.recv(ctx, left, TAG_R);
            let _ = comm.recv(ctx, right, TAG_L);
        }
        if cfg.allreduce_every > 0 && iter % cfg.allreduce_every == 0 {
            let _ = comm.allreduce(ctx, &[0u8; 8], ReduceOp::ByteMax);
        }
        let exit = trace_clk.get_time(ctx);
        if ctx.obs_on() {
            ctx.obs_exit_read(ClockReadings::global(exit.raw_seconds()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::per_rank_events;
    use hcs_clock::{LocalClock, TimeSource};
    use hcs_sim::machines::testbed;
    use hcs_sim::{Cluster, ObsSpec};

    fn observed(nodes: usize, cores: usize, seed: u64) -> Cluster {
        testbed(nodes, cores)
            .cluster(seed)
            .to_builder()
            .observability(ObsSpec::full())
            .build()
    }

    #[test]
    fn proxy_records_every_iteration() {
        let cluster = observed(2, 2, 1);
        let (_, log) = cluster.run_observed(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let cfg = AmgProxyConfig {
                iterations: 10,
                ..Default::default()
            };
            amg_proxy(ctx, &mut comm, &mut clk, cfg);
        });
        let per_rank = per_rank_events(&log, AMG_SPAN);
        assert_eq!(per_rank.len(), 4);
        assert!(per_rank.iter().all(|evs| evs.len() == 10));
    }

    #[test]
    fn allreduce_dominates_wait_time_for_fast_ranks() {
        // The slowest rank arrives last; fast ranks' allreduce time
        // includes waiting for it, so their traced durations exceed the
        // slow rank's.
        let cluster = observed(2, 2, 2);
        let (_, log) = cluster.run_observed(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let cfg = AmgProxyConfig {
                iterations: 8,
                compute_mean_s: secs(300e-6),
                imbalance: 0.5,
                noise: 0.0,
                ..Default::default()
            };
            amg_proxy(ctx, &mut comm, &mut clk, cfg);
        });
        let per_rank = per_rank_events(&log, AMG_SPAN);
        let mean = |evs: &[crate::trace::TraceEvent]| {
            evs.iter().map(|e| e.duration().seconds()).sum::<f64>() / evs.len() as f64
        };
        // Rank 0 (fastest compute) waits longest inside the allreduce;
        // the last rank (slowest) waits least.
        let fast = mean(&per_rank[0]);
        let slow = mean(&per_rank[3]);
        assert!(fast > slow, "fast rank {fast:.3e} vs slow rank {slow:.3e}");
    }

    #[test]
    fn halo_proxy_runs_and_records() {
        let cluster = observed(3, 2, 6);
        let (sent, log) = cluster.run_observed(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let cfg = HaloProxyConfig {
                iterations: 12,
                ..Default::default()
            };
            halo_proxy(ctx, &mut comm, &mut clk, cfg);
            ctx.counters().sent_msgs
        });
        let per_rank = per_rank_events(&log, HALO_SPAN);
        for evs in &per_rank {
            assert_eq!(evs.len(), 12);
        }
        for &s in &sent {
            // 2 halo sends per iteration + allreduce traffic.
            assert!(s >= 24, "sent {s}");
        }
    }

    #[test]
    fn halo_proxy_single_rank_degenerates_gracefully() {
        let cluster = observed(1, 1, 7);
        let (_, log) = cluster.run_observed(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            halo_proxy(ctx, &mut comm, &mut clk, HaloProxyConfig::default());
        });
        assert_eq!(per_rank_events(&log, HALO_SPAN)[0].len(), 20);
    }

    #[test]
    fn proxy_is_deterministic() {
        let run = || {
            let (_, log) = observed(2, 1, 5).run_observed(|ctx| {
                let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
                let mut comm = Comm::world(ctx);
                amg_proxy(ctx, &mut comm, &mut clk, AmgProxyConfig::default());
            });
            per_rank_events(&log, AMG_SPAN)
                .iter()
                .map(|evs| evs.last().map(|e| e.exit))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn proxy_timeline_is_identical_with_observability_off() {
        let body = |ctx: &mut RankCtx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            amg_proxy(ctx, &mut comm, &mut clk, AmgProxyConfig::default());
            ctx.now()
        };
        let on = observed(2, 2, 9).run(body);
        let off = testbed(2, 2).cluster(9).run(body);
        assert_eq!(on, off);
    }
}
