#![warn(missing_docs)]

//! # hcs-bench — MPI benchmarking schemes, suite emulations and tracing
//!
//! The measurement side of the CLUSTER'18 reproduction:
//!
//! - [`schemes`] — the three process-coordination schemes the paper
//!   compares: **barrier-based** (what OSU/IMB do), **window-based**
//!   (SKaMPI/NBCBench) and the paper's novel **Round-Time**
//!   (Algorithm 5),
//! - [`suites`] — emulations of how OSU Micro-Benchmarks, Intel MPI
//!   Benchmarks and ReproMPI aggregate samples into a reported latency
//!   (Figs. 7 and 9),
//! - [`imbalance`] — barrier exit-imbalance measurement (Fig. 8),
//! - [`trace`] + [`workloads`] — typed trace extraction from the
//!   observability layer and the AMG2013-proxy workload behind the
//!   Gantt charts of Fig. 10,
//! - [`stats`] — summary statistics used throughout,
//! - [`sweep`] — the deterministic parallel sweep executor that runs
//!   independent experiment repetitions concurrently while keeping
//!   every artifact byte-identical to the sequential path.

pub mod guidelines;
pub mod imbalance;
pub mod microbench;
pub mod postmortem;
pub mod profile;
pub mod schemes;
pub mod stats;
pub mod suites;
pub mod sweep;
pub mod trace;
pub mod tuner;
pub mod workloads;

pub use guidelines::{check_guideline, Guideline, GuidelineVerdict};
pub use imbalance::measure_barrier_imbalance;
pub use postmortem::{correct_events, interpolate, measure_epoch, SyncEpoch};
pub use profile::{ProfileReport, Profiler, RegionStats};
pub use schemes::{
    estimate_allreduce_latency, estimate_bcast_latency, run_barrier_scheme, run_round_time,
    run_window_scheme, RepSample, RoundTimeConfig, WindowConfig, WindowOutcome,
};
pub use stats::{Histogram, Summary};
pub use suites::{measure_allreduce, Suite, SuiteConfig, SuiteResult};
pub use sweep::{run_cluster_sweep, run_seed, SweepExecutor};
pub use trace::{gantt_rows, per_rank_events, TraceEvent};
pub use tuner::{
    measure_candidate, tune_allreduce, tune_alltoall, CandidateResult, TuneScheme, TuningResult,
};
pub use workloads::{amg_proxy, halo_proxy, AmgProxyConfig, HaloProxyConfig, AMG_SPAN, HALO_SPAN};

/// One-stop imports.
pub mod prelude {
    pub use crate::guidelines::{check_guideline, Guideline, GuidelineVerdict};
    pub use crate::imbalance::measure_barrier_imbalance;
    pub use crate::postmortem::{correct_events, interpolate, measure_epoch, SyncEpoch};
    pub use crate::profile::{ProfileReport, Profiler, RegionStats};
    pub use crate::schemes::{
        estimate_allreduce_latency, estimate_bcast_latency, run_barrier_scheme, run_round_time,
        run_window_scheme, RepSample, RoundTimeConfig, WindowConfig, WindowOutcome,
    };
    pub use crate::stats::{Histogram, Summary};
    pub use crate::suites::{measure_allreduce, Suite, SuiteConfig, SuiteResult};
    pub use crate::sweep::{run_cluster_sweep, run_seed, SweepExecutor};
    pub use crate::trace::{gantt_rows, per_rank_events, TraceEvent};
    pub use crate::tuner::{
        measure_candidate, tune_allreduce, tune_alltoall, CandidateResult, TuneScheme, TuningResult,
    };
    pub use crate::workloads::{
        amg_proxy, halo_proxy, AmgProxyConfig, HaloProxyConfig, AMG_SPAN, HALO_SPAN,
    };
}
