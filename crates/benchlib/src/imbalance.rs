//! Barrier exit-imbalance measurement (paper Fig. 8).
//!
//! Protocol (paper §V-B): each barrier call is *started* via a
//! Round-Time-style common start timestamp on the logical global clock;
//! every process records its barrier exit timestamp; the *imbalance* of
//! the call is the skew between the first and the last process leaving
//! the barrier. "A barrier-based measurement scheme suffers less from
//! barrier effects if this imbalance is small."

use hcs_clock::{busy_wait_until, Clock, Span};
use hcs_mpi::{BarrierAlgorithm, Comm, ReduceOp};
use hcs_sim::{secs, RankCtx};

/// Measures the exit imbalance of `ncalls` barrier invocations.
/// Returns one imbalance per call on the root; `None` on other ranks.
pub fn measure_barrier_imbalance(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    g_clk: &mut dyn Clock,
    barrier_alg: BarrierAlgorithm,
    ncalls: usize,
    slack_s: Span,
) -> Option<Vec<Span>> {
    let mut out = Vec::with_capacity(ncalls);
    for _ in 0..ncalls {
        // Common start on the global clock.
        let proposal = g_clk.get_time(ctx) + slack_s;
        let start = comm.bcast_time(ctx, 0, proposal);
        busy_wait_until(g_clk, ctx, start);

        comm.barrier(ctx, barrier_alg);
        let exit = g_clk.get_time(ctx);

        // Imbalance = max exit − min exit across ranks (the readings
        // share the global frame, so reducing their raw values is safe).
        let max_exit = comm.allreduce_f64(ctx, exit.raw_seconds(), ReduceOp::F64Max);
        let min_exit = comm.allreduce_f64(ctx, exit.raw_seconds(), ReduceOp::F64Min);
        out.push(secs(max_exit - min_exit));
    }
    (comm.rank() == 0).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use hcs_clock::{LocalClock, TimeSource};
    use hcs_core::{ClockSync, Hca3};
    use hcs_sim::machines::testbed;

    fn imbalances(alg: BarrierAlgorithm, seed: u64) -> Vec<f64> {
        let cluster = testbed(6, 4).cluster(seed);
        let res = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(25, 6);
            let mut g = sync.sync_clocks(ctx, &mut comm, Box::new(clk));
            measure_barrier_imbalance(ctx, &mut comm, g.as_mut(), alg, 40, secs(200e-6))
        });
        res[0]
            .clone()
            .expect("root reports")
            .into_iter()
            .map(Span::seconds)
            .collect()
    }

    #[test]
    fn imbalances_are_positive_and_bounded() {
        let xs = imbalances(BarrierAlgorithm::Tree, 1);
        assert_eq!(xs.len(), 40);
        for &x in &xs {
            assert!(x >= 0.0);
            assert!(x < 1e-3, "imbalance {x:.3e}");
        }
    }

    #[test]
    fn double_ring_is_much_worse_than_tree() {
        // The qualitative core of Fig. 8.
        let tree = Summary::of(&imbalances(BarrierAlgorithm::Tree, 2)).median;
        let ring = Summary::of(&imbalances(BarrierAlgorithm::DoubleRing, 2)).median;
        assert!(
            ring > 3.0 * tree,
            "tree {tree:.3e} vs double ring {ring:.3e}"
        );
    }
}
