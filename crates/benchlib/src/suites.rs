//! Emulations of how the common benchmark suites turn raw samples into
//! a reported `MPI_Allreduce` latency (the comparison of Figs. 7 & 9).
//!
//! | Suite            | Coordination | Aggregation                          |
//! |------------------|--------------|--------------------------------------|
//! | OSU              | barrier      | mean over reps, then mean over ranks |
//! | Intel MPI (IMB)  | barrier      | mean over reps, then max over ranks  |
//! | ReproMPI         | Round-Time   | median of per-rep *global* latencies |
//!
//! The two barrier-based suites measure with each rank's local clock;
//! ReproMPI uses the logical global clock, so a repetition's latency is
//! `max(end over ranks) − common start` — immune to barrier-exit
//! imbalance by construction.

use hcs_clock::{Clock, GlobalTime, Span};
use hcs_mpi::{BarrierAlgorithm, Comm, ReduceOp};
use hcs_sim::{secs, RankCtx};

use crate::schemes::{estimate_bcast_latency, run_barrier_scheme, run_round_time, RoundTimeConfig};
use crate::stats::Summary;

/// Which benchmark suite's methodology to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// OSU Micro-Benchmarks style.
    Osu,
    /// Intel MPI Benchmarks style.
    Imb,
    /// ReproMPI with the Round-Time scheme.
    ReproMpi,
    /// SKaMPI style: window-based on the global clock, with the window
    /// auto-sized from a pilot latency estimate (the scheme whose two
    /// weaknesses — window sizing and outlier cascades — the paper's
    /// Round-Time fixes).
    Skampi,
}

impl Suite {
    /// Display label (Fig. 7 x-axis).
    pub fn label(&self) -> &'static str {
        match self {
            Suite::Osu => "OSU",
            Suite::Imb => "IMB",
            Suite::ReproMpi => "ReproMPI",
            Suite::Skampi => "SKaMPI",
        }
    }
}

/// Common measurement configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Repetitions (barrier-based) or `max_nrep` (Round-Time).
    pub nreps: usize,
    /// `MPI_Barrier` algorithm used by the barrier-based suites.
    pub barrier: BarrierAlgorithm,
    /// Round-Time time slice.
    pub time_slice_s: Span,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            nreps: 200,
            barrier: BarrierAlgorithm::Bruck,
            time_slice_s: secs(0.5),
        }
    }
}

/// The reported latency, available on the root (comm rank 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteResult {
    /// The latency the suite would print, seconds.
    pub latency_s: f64,
    /// Valid repetitions that entered the aggregation.
    pub nreps: usize,
}

/// Measures an `msize`-byte `MPI_Allreduce` the way `suite` would, and
/// returns the reported latency on the root (`None` elsewhere).
///
/// `g_clk` is the rank's clock: for the barrier suites any local clock
/// works; ReproMPI requires a synchronized logical global clock.
pub fn measure_allreduce(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    g_clk: &mut dyn Clock,
    suite: Suite,
    msize: usize,
    cfg: SuiteConfig,
) -> Option<SuiteResult> {
    let payload = vec![0u8; msize];
    let mut op = |ctx: &mut RankCtx, comm: &mut Comm| {
        let _ = comm.allreduce(ctx, &payload, ReduceOp::ByteMax);
    };
    match suite {
        Suite::Osu | Suite::Imb => {
            let samples = run_barrier_scheme(ctx, comm, g_clk, cfg.barrier, cfg.nreps, &mut op);
            let local_mean = (samples.iter().map(|s| s.latency()).sum::<Span>()
                / samples.len() as f64)
                .seconds();
            let agg = match suite {
                Suite::Osu => {
                    comm.allreduce_f64(ctx, local_mean, ReduceOp::F64Sum) / comm.size() as f64
                }
                _ => comm.allreduce_f64(ctx, local_mean, ReduceOp::F64Max),
            };
            (comm.rank() == 0).then_some(SuiteResult {
                latency_s: agg,
                nreps: samples.len(),
            })
        }
        Suite::Skampi => {
            // Pilot estimate sizes the window (SKaMPI's auto-sizing);
            // the factor leaves room for jitter without wasting slots.
            let pilot = crate::schemes::estimate_allreduce_latency(ctx, comm, g_clk, msize, 5);
            let cfg = crate::schemes::WindowConfig {
                window_s: pilot * 4.0,
                nreps: cfg.nreps,
                first_window_slack_s: 20.0 * pilot,
            };
            let outcome = crate::schemes::run_window_scheme(ctx, comm, g_clk, cfg, &mut op);
            // Global latency of the valid windows.
            let mut globals = Vec::new();
            for (s, &valid) in outcome.samples.iter().zip(&outcome.valid) {
                // End readings share the global frame across ranks.
                let max_end = GlobalTime::from_raw_seconds(comm.allreduce_f64(
                    ctx,
                    s.end.raw_seconds(),
                    ReduceOp::F64Max,
                ));
                if valid {
                    globals.push((max_end - s.start).seconds());
                }
            }
            (comm.rank() == 0).then(|| SuiteResult {
                latency_s: if globals.is_empty() {
                    f64::NAN
                } else {
                    globals.iter().sum::<f64>() / globals.len() as f64
                },
                nreps: globals.len(),
            })
        }
        Suite::ReproMpi => {
            let bcast_lat = estimate_bcast_latency(ctx, comm, g_clk, 10);
            let rt = RoundTimeConfig {
                max_time_slice_s: cfg.time_slice_s,
                max_nrep: cfg.nreps,
                slack_b: 3.0,
                bcast_latency_s: bcast_lat,
            };
            let samples = run_round_time(ctx, comm, g_clk, rt, &mut op);
            // Global per-rep latency: the slowest rank's end minus the
            // common start (all on the global clock).
            let mut globals = Vec::with_capacity(samples.len());
            for s in &samples {
                let max_end = GlobalTime::from_raw_seconds(comm.allreduce_f64(
                    ctx,
                    s.end.raw_seconds(),
                    ReduceOp::F64Max,
                ));
                globals.push((max_end - s.start).seconds());
            }
            (comm.rank() == 0).then(|| SuiteResult {
                latency_s: if globals.is_empty() {
                    f64::NAN
                } else {
                    Summary::of(&globals).median
                },
                nreps: globals.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_clock::{LocalClock, TimeSource};
    use hcs_core::{ClockSync, Hca3};
    use hcs_sim::machines::testbed;

    fn run_suite(suite: Suite, barrier: BarrierAlgorithm, seed: u64) -> SuiteResult {
        let cluster = testbed(4, 2).cluster(seed);
        let results = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(20, 5);
            let mut g = sync.sync_clocks(ctx, &mut comm, Box::new(clk));
            let cfg = SuiteConfig {
                nreps: 50,
                barrier,
                time_slice_s: secs(0.05),
            };
            measure_allreduce(ctx, &mut comm, g.as_mut(), suite, 8, cfg)
        });
        results[0].expect("root reports")
    }

    #[test]
    fn skampi_window_suite_reports_and_validates() {
        let r = run_suite(Suite::Skampi, BarrierAlgorithm::Tree, 9);
        assert!(
            r.latency_s > 3e-6 && r.latency_s < 300e-6,
            "{:.3e}",
            r.latency_s
        );
        // Auto-sized windows should validate the bulk of the repetitions.
        assert!(r.nreps >= 35, "only {} valid windows", r.nreps);
    }

    #[test]
    fn all_suites_report_plausible_latencies() {
        for suite in [Suite::Osu, Suite::Imb, Suite::ReproMpi, Suite::Skampi] {
            let r = run_suite(suite, BarrierAlgorithm::Tree, 1);
            assert!(
                r.latency_s > 3e-6 && r.latency_s < 300e-6,
                "{suite:?}: {:.3e}",
                r.latency_s
            );
            assert!(r.nreps > 10);
        }
    }

    #[test]
    fn barrier_choice_shifts_barrier_based_suites() {
        // The paper's Fig. 7 finding: the measured latency of the same
        // operation depends on the barrier algorithm for OSU/IMB.
        let tree = run_suite(Suite::Osu, BarrierAlgorithm::Tree, 2).latency_s;
        let ring = run_suite(Suite::Osu, BarrierAlgorithm::DoubleRing, 2).latency_s;
        assert!(
            (ring - tree).abs() / tree > 0.1,
            "expected >10% shift: tree {tree:.3e} vs double-ring {ring:.3e}"
        );
    }

    #[test]
    fn non_root_ranks_get_none() {
        let cluster = testbed(2, 1).cluster(3);
        let results = cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let cfg = SuiteConfig {
                nreps: 5,
                ..Default::default()
            };
            measure_allreduce(ctx, &mut comm, &mut clk, Suite::Osu, 8, cfg)
        });
        assert!(results[0].is_some());
        assert!(results[1].is_none());
    }

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::Osu.label(), "OSU");
        assert_eq!(Suite::Imb.label(), "IMB");
        assert_eq!(Suite::ReproMpi.label(), "ReproMPI");
        assert_eq!(Suite::Skampi.label(), "SKaMPI");
    }
}
