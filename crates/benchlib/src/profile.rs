//! Region-based profiling (mpiP/IPM style).
//!
//! The paper selects AMG2013 because its IPM profile shows "the
//! application spends about 80% of the time in `MPI_Allreduce` with a
//! buffer size of 8 B" (§V-C, ref \[22\]). This module provides the same
//! kind of evidence for simulated applications: nested regions are
//! timed with any clock, aggregated per rank, gathered at the root and
//! reported as a percentage table.

use std::collections::HashMap;

use hcs_clock::{Clock, GlobalTime, Span};
use hcs_mpi::Comm;
use hcs_sim::{secs, RankCtx};

/// Accumulated statistics of one region on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RegionStats {
    /// Number of enter/leave pairs.
    pub calls: u64,
    /// Total time spent inside.
    pub total_s: Span,
}

/// A per-rank region profiler.
///
/// Regions nest: time inside an inner region is *also* charged to the
/// outer one (inclusive timing, like IPM's default view).
#[derive(Debug, Default)]
pub struct Profiler {
    stats: HashMap<String, RegionStats>,
    stack: Vec<(String, GlobalTime)>,
    run_begin: Option<GlobalTime>,
    run_end: Option<GlobalTime>,
}

impl Profiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters a region at the clock's current reading.
    pub fn enter(&mut self, name: &str, clk: &mut dyn Clock, ctx: &mut RankCtx) {
        let now = clk.get_time(ctx);
        self.run_begin.get_or_insert(now);
        self.stack.push((name.to_string(), now));
    }

    /// Leaves the innermost region.
    ///
    /// # Panics
    /// Panics if no region is open or the name does not match.
    pub fn leave(&mut self, name: &str, clk: &mut dyn Clock, ctx: &mut RankCtx) {
        let now = clk.get_time(ctx);
        let (open, begin) = self.stack.pop().expect("leave without matching enter");
        assert_eq!(
            open, name,
            "region nesting violated: left {name}, open {open}"
        );
        let entry = self.stats.entry(open).or_default();
        entry.calls += 1;
        entry.total_s += now - begin;
        // Clock readings can be negative (boot offsets), so the end
        // marker must start unset rather than at zero.
        self.run_end = Some(self.run_end.map_or(now, |e| e.max(now)));
    }

    /// Times `body` as one region call.
    pub fn scoped<T>(
        &mut self,
        name: &str,
        clk: &mut dyn Clock,
        ctx: &mut RankCtx,
        comm: &mut Comm,
        body: impl FnOnce(&mut RankCtx, &mut Comm, &mut dyn Clock) -> T,
    ) -> T {
        self.enter(name, clk, ctx);
        let out = body(ctx, comm, clk);
        self.leave(name, clk, ctx);
        out
    }

    /// This rank's stats for a region (zeroes if never entered).
    pub fn region(&self, name: &str) -> RegionStats {
        self.stats.get(name).copied().unwrap_or_default()
    }

    /// Total profiled wall time on this rank (first enter → last leave).
    pub fn span_s(&self) -> Span {
        match (self.run_begin, self.run_end) {
            (Some(b), Some(e)) => e - b,
            _ => Span::ZERO,
        }
    }

    /// Serializes `(name, calls, total)` rows.
    fn pack(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (name, s) in &self.stats {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&s.calls.to_le_bytes());
            out.extend_from_slice(&s.total_s.seconds().to_le_bytes());
        }
        out.extend_from_slice(&self.span_s().seconds().to_le_bytes());
        out
    }

    /// Gathers all ranks' profiles at the root and merges them into a
    /// cluster-wide report. Collective.
    pub fn gather(&self, ctx: &mut RankCtx, comm: &mut Comm) -> Option<ProfileReport> {
        let gathered = comm.gather(ctx, 0, &self.pack())?;
        let mut merged: HashMap<String, RegionStats> = HashMap::new();
        let mut total_span = Span::ZERO;
        for raw in &gathered {
            let mut off = 0usize;
            while off + 4 <= raw.len() - 8 {
                let nl = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize;
                off += 4;
                let name = String::from_utf8(raw[off..off + nl].to_vec()).expect("utf8 region");
                off += nl;
                let calls = u64::from_le_bytes(raw[off..off + 8].try_into().unwrap());
                off += 8;
                let total = f64::from_le_bytes(raw[off..off + 8].try_into().unwrap());
                off += 8;
                let e = merged.entry(name).or_default();
                e.calls += calls;
                e.total_s += secs(total);
            }
            total_span += secs(f64::from_le_bytes(raw[raw.len() - 8..].try_into().unwrap()));
        }
        Some(ProfileReport {
            regions: merged,
            total_span_s: total_span,
        })
    }
}

/// Cluster-wide merged profile.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Region name → aggregated stats over all ranks.
    pub regions: HashMap<String, RegionStats>,
    /// Sum of per-rank profiled spans (the denominator for percentages).
    pub total_span_s: Span,
}

impl ProfileReport {
    /// Fraction of total profiled time spent in `name` (0 if absent).
    pub fn fraction(&self, name: &str) -> f64 {
        if self.total_span_s <= Span::ZERO {
            return 0.0;
        }
        self.regions
            .get(name)
            .map_or(0.0, |s| s.total_s / self.total_span_s)
    }

    /// Rows `(name, calls, total_s, fraction)` sorted by time, largest
    /// first.
    pub fn rows(&self) -> Vec<(String, u64, Span, f64)> {
        let mut rows: Vec<_> = self
            .regions
            .iter()
            .map(|(n, s)| (n.clone(), s.calls, s.total_s, self.fraction(n)))
            .collect();
        rows.sort_by(|a, b| b.2.seconds().total_cmp(&a.2.seconds()));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_clock::{LocalClock, TimeSource};
    use hcs_mpi::ReduceOp;
    use hcs_sim::machines::testbed;

    #[test]
    fn regions_accumulate_time_and_calls() {
        let cluster = testbed(1, 2).cluster(1);
        cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut prof = Profiler::new();
            for _ in 0..3 {
                prof.enter("compute", &mut clk, ctx);
                ctx.compute(secs(1e-3));
                prof.leave("compute", &mut clk, ctx);
            }
            let s = prof.region("compute");
            assert_eq!(s.calls, 3);
            assert!(
                (s.total_s - secs(3e-3)).abs() < secs(1e-4),
                "total {}",
                s.total_s
            );
            assert!(prof.span_s() >= secs(3e-3));
        });
    }

    #[test]
    fn nested_regions_are_inclusive() {
        let cluster = testbed(1, 1).cluster(2);
        cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut prof = Profiler::new();
            prof.enter("outer", &mut clk, ctx);
            prof.enter("inner", &mut clk, ctx);
            ctx.compute(secs(2e-3));
            prof.leave("inner", &mut clk, ctx);
            ctx.compute(secs(1e-3));
            prof.leave("outer", &mut clk, ctx);
            assert!(prof.region("outer").total_s >= secs(2.9e-3));
            assert!((prof.region("inner").total_s - secs(2e-3)).abs() < secs(1e-4));
        });
    }

    #[test]
    fn gather_merges_across_ranks() {
        let cluster = testbed(2, 2).cluster(3);
        let reports = cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut prof = Profiler::new();
            prof.enter("mpi_allreduce", &mut clk, ctx);
            let _ = comm.allreduce(ctx, &[0u8; 8], ReduceOp::ByteMax);
            prof.leave("mpi_allreduce", &mut clk, ctx);
            prof.gather(ctx, &mut comm)
        });
        let r = reports[0].as_ref().unwrap();
        assert_eq!(r.regions["mpi_allreduce"].calls, 4, "one call per rank");
        assert!(
            r.fraction("mpi_allreduce") > 0.5,
            "only region should dominate"
        );
    }

    #[test]
    #[should_panic(expected = "nesting violated")]
    fn mismatched_leave_panics() {
        let cluster = testbed(1, 1).cluster(4);
        cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut prof = Profiler::new();
            prof.enter("a", &mut clk, ctx);
            prof.leave("b", &mut clk, ctx);
        });
    }
}
