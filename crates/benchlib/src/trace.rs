//! A minimal MPI tracing layer (for the paper's Fig. 10 case study).
//!
//! Each rank records `(iteration, enter, exit)` events for the traced
//! operation using a caller-supplied clock — a local time source
//! reproduces the distorted Gantt charts of Fig. 10 (right column), a
//! synchronized global clock the coherent ones (left column).

use hcs_mpi::Comm;
use hcs_sim::{RankCtx, Tag};

/// One traced operation instance on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Iteration (or sequence) number.
    pub iter: u32,
    /// Clock reading at operation entry.
    pub enter: f64,
    /// Clock reading at operation exit.
    pub exit: f64,
}

impl TraceEvent {
    /// Duration of the traced operation.
    pub fn duration(&self) -> f64 {
        self.exit - self.enter
    }
}

/// Per-rank event recorder.
#[derive(Debug, Default, Clone)]
pub struct Tracer {
    events: Vec<TraceEvent>,
}

const TAG_TRACE: Tag = 0x01A0;

impl Tracer {
    /// A fresh, empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event.
    pub fn record(&mut self, iter: u32, enter: f64, exit: f64) {
        self.events.push(TraceEvent { iter, enter, exit });
    }

    /// This rank's events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Gathers all ranks' events at the root (post-mortem, like real
    /// tracing tools). Returns `Some(per_rank_events)` on comm rank 0.
    pub fn gather(&self, ctx: &mut RankCtx, comm: &mut Comm) -> Option<Vec<Vec<TraceEvent>>> {
        let mut buf = Vec::with_capacity(self.events.len() * 20);
        for e in &self.events {
            buf.extend_from_slice(&e.iter.to_le_bytes());
            buf.extend_from_slice(&e.enter.to_le_bytes());
            buf.extend_from_slice(&e.exit.to_le_bytes());
        }
        let _ = TAG_TRACE; // tag reserved for streaming extensions
        let gathered = comm.gather(ctx, 0, &buf)?;
        Some(
            gathered
                .into_iter()
                .map(|raw| {
                    raw.chunks_exact(20)
                        .map(|c| TraceEvent {
                            iter: u32::from_le_bytes(c[0..4].try_into().unwrap()),
                            enter: f64::from_le_bytes(c[4..12].try_into().unwrap()),
                            exit: f64::from_le_bytes(c[12..20].try_into().unwrap()),
                        })
                        .collect()
                })
                .collect(),
        )
    }
}

/// A Gantt row for one rank and one iteration: `(rank, start, duration)`
/// with `start` normalized to the earliest start among ranks (this is
/// what Fig. 10 plots).
pub fn gantt_rows(per_rank: &[Vec<TraceEvent>], iter: u32) -> Vec<(usize, f64, f64)> {
    let starts: Vec<Option<&TraceEvent>> = per_rank
        .iter()
        .map(|evs| evs.iter().find(|e| e.iter == iter))
        .collect();
    let min_start = starts
        .iter()
        .flatten()
        .map(|e| e.enter)
        .fold(f64::INFINITY, f64::min);
    starts
        .iter()
        .enumerate()
        .filter_map(|(rank, ev)| ev.map(|e| (rank, e.enter - min_start, e.duration())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_sim::machines::testbed;

    #[test]
    fn record_and_gather_roundtrip() {
        let cluster = testbed(2, 2).cluster(1);
        let res = cluster.run(|ctx| {
            let mut comm = Comm::world(ctx);
            let mut tr = Tracer::new();
            let base = comm.rank() as f64;
            tr.record(0, base, base + 0.5);
            tr.record(1, base + 1.0, base + 1.25);
            tr.gather(ctx, &mut comm)
        });
        let all = res[0].as_ref().unwrap();
        assert_eq!(all.len(), 4);
        for (rank, evs) in all.iter().enumerate() {
            assert_eq!(evs.len(), 2);
            assert_eq!(evs[0].iter, 0);
            assert!((evs[0].enter - rank as f64).abs() < 1e-12);
            assert!((evs[1].duration() - 0.25).abs() < 1e-12);
        }
        assert!(res[1].is_none());
    }

    #[test]
    fn gantt_rows_normalize_to_earliest() {
        let per_rank = vec![
            vec![TraceEvent {
                iter: 3,
                enter: 10.0,
                exit: 10.5,
            }],
            vec![TraceEvent {
                iter: 3,
                enter: 9.0,
                exit: 9.25,
            }],
            vec![], // a rank without this iteration
        ];
        let rows = gantt_rows(&per_rank, 3);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0, 1.0, 0.5));
        assert_eq!(rows[1], (1, 0.0, 0.25));
    }

    #[test]
    fn empty_tracer_gathers_empty() {
        let cluster = testbed(1, 2).cluster(2);
        let res = cluster.run(|ctx| {
            let mut comm = Comm::world(ctx);
            Tracer::new().gather(ctx, &mut comm)
        });
        assert!(res[0].as_ref().unwrap().iter().all(|v| v.is_empty()));
    }
}
