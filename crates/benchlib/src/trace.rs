//! Typed per-iteration trace events for the Gantt-chart case study
//! (paper §V-C, Fig. 10), derived from the observability layer.
//!
//! Workloads no longer carry their own tracer: they open an
//! observability span per iteration (with the traced clock's reading
//! attached to both edges) and [`per_rank_events`] reconstructs the
//! classic `(iter, enter, exit)` trace from the merged
//! [`TraceLog`](hcs_sim::TraceLog) after the run. Readings are
//! frame-agnostic raw values of whatever clock the workload traced with
//! — a raw local clock or a synchronized global clock; comparing the
//! two is the whole point of Fig. 10 — so events carry them as
//! [`GlobalTime`] and analysis stays inside the clock-domain newtypes.

use hcs_clock::{GlobalTime, Span};
use hcs_sim::obs::Event;
use hcs_sim::TraceLog;

/// One traced interval of a workload iteration, in the frame of the
/// clock the workload traced with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Iteration index (the span's sequence number).
    pub iter: u32,
    /// Traced-clock reading at region entry.
    pub enter: GlobalTime,
    /// Traced-clock reading at region exit.
    pub exit: GlobalTime,
}

impl TraceEvent {
    /// Apparent duration of the region under the traced clock.
    pub fn duration(&self) -> Span {
        self.exit - self.enter
    }
}

/// Extracts every `name` span of every rank from a merged trace log,
/// in rank order, as classic `(iter, enter, exit)` trace events.
///
/// Span edges prefer the clock reading the workload attached (the
/// traced clock); edges without a reading fall back to virtual true
/// time, which is exact but unobtainable on a real machine.
pub fn per_rank_events(log: &TraceLog, name: &str) -> Vec<Vec<TraceEvent>> {
    log.ranks()
        .iter()
        .map(|rec| {
            let Some(want) = rec.names().iter().position(|n| n == name) else {
                return Vec::new();
            };
            let mut out = Vec::new();
            let mut open: Vec<(u32, GlobalTime)> = Vec::new();
            for ev in rec.events() {
                match *ev {
                    Event::Enter {
                        secs,
                        name,
                        seq,
                        reads,
                    } if name as usize == want => {
                        let enter = GlobalTime::from_raw_seconds(reads.global.unwrap_or(secs));
                        open.push((seq, enter));
                    }
                    Event::Exit { secs, name, reads } if name as usize == want => {
                        if let Some((iter, enter)) = open.pop() {
                            let exit = GlobalTime::from_raw_seconds(reads.global.unwrap_or(secs));
                            out.push(TraceEvent { iter, enter, exit });
                        }
                    }
                    _ => {}
                }
            }
            out
        })
        .collect()
}

/// Extracts the Gantt rows of one iteration from per-rank trace events:
/// `(rank, enter offset, duration)`, offsets normalized to the earliest
/// enter among the ranks that recorded the iteration.
pub fn gantt_rows(per_rank: &[Vec<TraceEvent>], iter: u32) -> Vec<(usize, Span, Span)> {
    let picked: Vec<(usize, &TraceEvent)> = per_rank
        .iter()
        .enumerate()
        .filter_map(|(rank, evs)| evs.iter().find(|e| e.iter == iter).map(|e| (rank, e)))
        .collect();
    let Some(origin) = picked
        .iter()
        .map(|&(_, e)| e.enter)
        .reduce(|a, b| if b < a { b } else { a })
    else {
        return Vec::new();
    };
    picked
        .into_iter()
        .map(|(rank, e)| (rank, e.enter - origin, e.duration()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_sim::obs::{ClockReadings, RankRecorder};

    fn ev(iter: u32, enter: f64, exit: f64) -> TraceEvent {
        TraceEvent {
            iter,
            enter: GlobalTime::from_raw_seconds(enter),
            exit: GlobalTime::from_raw_seconds(exit),
        }
    }

    #[test]
    fn per_rank_events_rebuilds_iterations_from_spans() {
        let mut r0 = RankRecorder::new(0, 64);
        r0.enter(1.0, "amg/allreduce", 0, ClockReadings::global(10.0));
        r0.exit(1.5, ClockReadings::global(10.5));
        r0.enter(2.0, "amg/allreduce", 1, ClockReadings::global(11.0));
        r0.exit(2.25, ClockReadings::global(11.25));
        let mut r1 = RankRecorder::new(1, 64);
        // A rank with other spans but none matching.
        r1.enter(1.0, "sync/hca3", 0, ClockReadings::NONE);
        r1.exit(2.0, ClockReadings::NONE);
        let log = TraceLog::new(vec![r0, r1]);

        let per_rank = per_rank_events(&log, "amg/allreduce");
        assert_eq!(per_rank.len(), 2);
        assert_eq!(per_rank[0], vec![ev(0, 10.0, 10.5), ev(1, 11.0, 11.25)]);
        assert!(per_rank[1].is_empty());
    }

    #[test]
    fn per_rank_events_falls_back_to_virtual_time_without_readings() {
        let mut rec = RankRecorder::new(0, 64);
        rec.enter(3.0, "halo/exchange", 7, ClockReadings::NONE);
        rec.exit(3.5, ClockReadings::NONE);
        let log = TraceLog::new(vec![rec]);
        let per_rank = per_rank_events(&log, "halo/exchange");
        assert_eq!(per_rank[0], vec![ev(7, 3.0, 3.5)]);
    }

    #[test]
    fn per_rank_events_ignores_nested_foreign_spans() {
        let mut rec = RankRecorder::new(0, 64);
        rec.enter(1.0, "outer", 0, ClockReadings::global(1.0));
        rec.enter(1.1, "inner", 0, ClockReadings::NONE);
        rec.exit(1.2, ClockReadings::NONE);
        rec.exit(2.0, ClockReadings::global(2.0));
        let log = TraceLog::new(vec![rec]);
        let per_rank = per_rank_events(&log, "outer");
        assert_eq!(per_rank[0], vec![ev(0, 1.0, 2.0)]);
    }

    #[test]
    fn gantt_rows_normalize_to_earliest() {
        let per_rank = vec![
            vec![ev(0, 5.0, 5.5), ev(1, 8.0, 8.1)],
            vec![ev(0, 4.5, 6.0)],
            vec![], // rank without the iteration
        ];
        let rows = gantt_rows(&per_rank, 0);
        assert_eq!(
            rows,
            vec![
                (0, Span::from_secs(0.5), Span::from_secs(0.5)),
                (1, Span::from_secs(0.0), Span::from_secs(1.5)),
            ]
        );
    }

    #[test]
    fn gantt_rows_of_missing_iteration_are_empty() {
        let per_rank = vec![vec![ev(0, 1.0, 2.0)]];
        assert!(gantt_rows(&per_rank, 3).is_empty());
    }
}
