//! Clock-offset measurement building blocks (paper §III-A).
//!
//! Both algorithms estimate the current offset `reference − client`
//! between two processes' clocks via ping-pongs, returning a
//! [`ClockOffset`] (offset + the client-clock timestamp it refers to) on
//! the client side:
//!
//! - [`SkampiOffset`] (Algorithm 7, from SKaMPI): keeps the *extreme*
//!   bounds `t_last − s_now` (lower) and `t_last − s_last` (upper) over
//!   all exchanges and returns their midpoint. No RTT estimate needed —
//!   "if a timing packet is lucky enough to experience the minimum
//!   delay, its timestamps have not been corrupted" (Ridoux & Veitch).
//! - [`MeanRttOffset`] (Algorithm 8, from Jones & Koenig): measures the
//!   mean RTT once per pair (cached), then takes the median of
//!   `local − ref − RTT/2` samples.

use std::collections::BTreeMap;

use hcs_clock::{Clock, LocalTime, Span};
use hcs_mpi::Comm;
use hcs_sim::{RankCtx, Tag};

/// User tag reserved for offset-measurement ping-pongs. Safe to share
/// across concurrent pairs: matching is per (source, tag).
const TAG_PING: Tag = 0x0101;
/// User tag for RTT measurement ping-pongs.
const TAG_RTT: Tag = 0x0102;

/// One clock-offset fit point: at client-clock reading `timestamp`, the
/// reference clock was estimated to be `offset` ahead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockOffset {
    /// Client clock reading at (or near) the measurement, in the
    /// client's frame (the fit abscissa).
    pub timestamp: LocalTime,
    /// Estimated `reference − client` clock offset.
    pub offset: Span,
}

/// Common parameter of the offset algorithms: ping-pongs per fit point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetParams {
    /// Number of ping-pong exchanges per `measure_offset` call
    /// (the paper's `nexchanges`, e.g. 100 for SKaMPI-Offset).
    pub nexchanges: usize,
}

impl Default for OffsetParams {
    fn default() -> Self {
        Self { nexchanges: 10 }
    }
}

/// A pairwise clock-offset estimator (the paper's `MEASURE_OFFSET`).
///
/// Called collectively by the reference and the client rank; other ranks
/// must not call it. Returns `Some(ClockOffset)` on the client, `None`
/// on the reference.
pub trait OffsetAlgorithm: Send {
    /// Short name as used in the paper's labels (e.g. `"SKaMPI-Offset"`).
    fn name(&self) -> &'static str;

    /// Measures the offset between `p_ref`'s and `client`'s clocks
    /// (communicator ranks); both pass their own current clock.
    fn measure_offset(
        &mut self,
        ctx: &mut RankCtx,
        comm: &Comm,
        clk: &mut dyn Clock,
        p_ref: usize,
        client: usize,
    ) -> Option<ClockOffset>;

    /// Ping-pongs per fit point (for labels).
    fn nexchanges(&self) -> usize;
}

/// SKaMPI's min-filtering offset estimator (paper Algorithm 7).
#[derive(Debug, Clone)]
pub struct SkampiOffset {
    /// Ping-pong count per measurement.
    pub params: OffsetParams,
}

impl SkampiOffset {
    /// With the given number of ping-pongs per fit point.
    pub fn new(nexchanges: usize) -> Self {
        assert!(nexchanges >= 1, "SKaMPI-Offset needs at least one exchange");
        Self {
            params: OffsetParams { nexchanges },
        }
    }
}

impl OffsetAlgorithm for SkampiOffset {
    fn name(&self) -> &'static str {
        "SKaMPI-Offset"
    }

    fn nexchanges(&self) -> usize {
        self.params.nexchanges
    }

    fn measure_offset(
        &mut self,
        ctx: &mut RankCtx,
        comm: &Comm,
        clk: &mut dyn Clock,
        p_ref: usize,
        client: usize,
    ) -> Option<ClockOffset> {
        let me = comm.rank();
        if me == p_ref {
            for _ in 0..self.params.nexchanges {
                // The client's ping carries its GlobalTime send stamp
                // (it is our reply, one line below, that matters);
                // receiving the ping as a bare f64 was a wire-type
                // mismatch the skeleton pass now rejects.
                let _ping = comm.recv_time(ctx, client, TAG_PING);
                let t_last = clk.get_time(ctx);
                comm.send_time(ctx, p_ref_partner(client), TAG_PING, t_last);
            }
            None
        } else if me == client {
            let mut td_min = Span::from_secs(f64::NEG_INFINITY);
            let mut td_max = Span::from_secs(f64::INFINITY);
            for _ in 0..self.params.nexchanges {
                let s_slast = clk.get_time(ctx);
                comm.send_time(ctx, p_ref, TAG_PING, s_slast);
                let t_last = comm.recv_time(ctx, p_ref, TAG_PING);
                let s_now = clk.get_time(ctx);
                // t_last - s_now under-estimates (ref stamped a round
                // trip ago), t_last - s_slast over-estimates. The two
                // clocks assert different frames, so these differences
                // are exactly the offsets this estimator exists to find.
                td_min = td_min.max(t_last - s_now);
                td_max = td_max.min(t_last - s_slast);
            }
            let diff = (td_min + td_max) / 2.0;
            Some(ClockOffset {
                timestamp: clk.get_time(ctx).rebase_local(),
                offset: diff,
            })
        } else {
            panic!("measure_offset called by rank {me}, neither ref {p_ref} nor client {client}");
        }
    }
}

/// Helper making the send target explicit at the call site above.
#[inline]
fn p_ref_partner(client: usize) -> usize {
    client
}

/// Jones & Koenig's mean-RTT / median-offset estimator (Algorithm 8).
///
/// The RTT between a pair is measured once (with synchronous sends) and
/// cached across calls, exactly like the paper's `have_rtt` flag.
#[derive(Debug, Clone)]
pub struct MeanRttOffset {
    /// Ping-pong count per measurement.
    pub params: OffsetParams,
    /// Ping-pongs used for the one-time RTT estimate.
    pub rtt_pingpongs: usize,
    /// Per-pair RTT cache. A `BTreeMap` (not `HashMap`): its iteration
    /// order is the key order, so any output derived from walking the
    /// cache is deterministic across processes — the randomly seeded
    /// default hasher would break bit-identical replay.
    rtt_cache: BTreeMap<(usize, usize), Span>,
}

impl MeanRttOffset {
    /// With the given exchanges per fit point and 10 RTT ping-pongs.
    pub fn new(nexchanges: usize) -> Self {
        assert!(
            nexchanges >= 1,
            "Mean-RTT-Offset needs at least one exchange"
        );
        Self {
            params: OffsetParams { nexchanges },
            rtt_pingpongs: 10,
            rtt_cache: BTreeMap::new(),
        }
    }

    fn measure_rtt(
        &mut self,
        ctx: &mut RankCtx,
        comm: &Comm,
        clk: &mut dyn Clock,
        p_ref: usize,
        client: usize,
    ) -> Span {
        let me = comm.rank();
        let mut sum = Span::ZERO;
        // One untimed warm-up exchange: the two processes may reach this
        // point at very different times (e.g. JK's root has just served
        // another client); without it the first round trip measures that
        // scheduling gap instead of the network.
        for i in 0..=self.rtt_pingpongs {
            if me == client {
                let t0 = clk.get_time(ctx);
                comm.ssend_t(ctx, p_ref, TAG_RTT, 0.0f64);
                let _: f64 = comm.recv_t(ctx, p_ref, TAG_RTT);
                let t1 = clk.get_time(ctx);
                if i > 0 {
                    sum += t1 - t0;
                }
            } else {
                let _: f64 = comm.recv_t(ctx, client, TAG_RTT);
                comm.ssend_t(ctx, client, TAG_RTT, 0.0f64);
            }
        }
        sum / self.rtt_pingpongs as f64
    }
}

impl OffsetAlgorithm for MeanRttOffset {
    fn name(&self) -> &'static str {
        "Mean-RTT-Offset"
    }

    fn nexchanges(&self) -> usize {
        self.params.nexchanges
    }

    fn measure_offset(
        &mut self,
        ctx: &mut RankCtx,
        comm: &Comm,
        clk: &mut dyn Clock,
        p_ref: usize,
        client: usize,
    ) -> Option<ClockOffset> {
        let me = comm.rank();
        assert!(
            me == p_ref || me == client,
            "measure_offset called by rank {me}, neither ref {p_ref} nor client {client}"
        );
        let key = (p_ref, client);
        let rtt = match self.rtt_cache.get(&key) {
            Some(&rtt) => rtt,
            None => {
                let rtt = self.measure_rtt(ctx, comm, clk, p_ref, client);
                self.rtt_cache.insert(key, rtt);
                rtt
            }
        };
        if me == p_ref {
            for _ in 0..self.params.nexchanges {
                let _dummy: f64 = comm.recv_t(ctx, client, TAG_PING);
                let tlocal = clk.get_time(ctx);
                comm.ssend_time(ctx, client, TAG_PING, tlocal);
            }
            None
        } else {
            let n = self.params.nexchanges;
            let mut local_time = Vec::with_capacity(n);
            let mut time_var = Vec::with_capacity(n);
            for _ in 0..n {
                comm.ssend_t(ctx, p_ref, TAG_PING, 0.0f64);
                let ref_time = comm.recv_time(ctx, p_ref, TAG_PING);
                let lt = clk.get_time(ctx);
                // ref stamped ~RTT/2 before our read; offset = ref - client.
                local_time.push(lt.rebase_local());
                time_var.push(ref_time + rtt / 2.0 - lt);
            }
            // Median by value; pick the sample realizing it (paper line 17).
            let mut sorted = time_var.clone();
            sorted.sort_by(|a, b| a.seconds().total_cmp(&b.seconds()));
            let median = sorted[sorted.len() / 2];
            let med_idx = time_var
                .iter()
                .position(|&v| v == median)
                .expect("median value present in samples");
            Some(ClockOffset {
                timestamp: local_time[med_idx],
                offset: time_var[med_idx],
            })
        }
    }
}

/// Declarative choice of offset algorithm — lets synchronization
/// algorithms be configured without carrying trait objects around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetSpec {
    /// [`SkampiOffset`] with `nexchanges` ping-pongs.
    Skampi {
        /// Ping-pongs per fit point.
        nexchanges: usize,
    },
    /// [`MeanRttOffset`] with `nexchanges` ping-pongs.
    MeanRtt {
        /// Ping-pongs per fit point.
        nexchanges: usize,
    },
}

impl OffsetSpec {
    /// Instantiates the algorithm.
    pub fn build(&self) -> Box<dyn OffsetAlgorithm> {
        match *self {
            OffsetSpec::Skampi { nexchanges } => Box::new(SkampiOffset::new(nexchanges)),
            OffsetSpec::MeanRtt { nexchanges } => Box::new(MeanRttOffset::new(nexchanges)),
        }
    }

    /// Label fragment, e.g. `"SKaMPI-Offset/100"`.
    pub fn label(&self) -> String {
        match *self {
            OffsetSpec::Skampi { nexchanges } => format!("SKaMPI-Offset/{nexchanges}"),
            OffsetSpec::MeanRtt { nexchanges } => format!("Mean-RTT-Offset/{nexchanges}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_clock::{LocalClock, Oscillator};
    use hcs_mpi::Comm;
    use hcs_sim::machines::testbed;

    /// Sets up a two-node pair with known constant clock offsets and
    /// measures; both estimators must find the planted offset within the
    /// network's jitter scale.
    fn measure_with(build: impl Fn() -> Box<dyn OffsetAlgorithm> + Sync) -> f64 {
        let planted = 125e-6; // ref is 125 us ahead
        let cluster = testbed(2, 1).cluster(99);
        let results = cluster.run(|ctx| {
            let comm = Comm::world(ctx);
            let osc = Oscillator::perfect();
            let mut clk = LocalClock::from_oscillator(osc, 0);
            let mut alg = build();
            if comm.rank() == 0 {
                // The reference runs `planted` ahead: emulate via a
                // decorated clock.
                let mut ref_clk = hcs_clock::GlobalClockLM::new(
                    Box::new(clk),
                    hcs_clock::LinearModel::new(0.0, planted),
                );
                alg.measure_offset(ctx, &comm, &mut ref_clk, 0, 1);
                None
            } else {
                alg.measure_offset(ctx, &comm, &mut clk, 0, 1)
            }
        });
        let got = results[1].expect("client got an offset");
        got.offset.seconds()
    }

    #[test]
    fn skampi_offset_finds_planted_offset() {
        let planted = 125e-6;
        let got = measure_with(|| Box::new(SkampiOffset::new(20)));
        assert!((got - planted).abs() < 2e-6, "got {got:.3e}");
    }

    #[test]
    fn mean_rtt_offset_finds_planted_offset() {
        let planted = 125e-6;
        let got = measure_with(|| Box::new(MeanRttOffset::new(20)));
        assert!((got - planted).abs() < 3e-6, "got {got:.3e}");
    }

    #[test]
    fn client_timestamp_is_in_client_frame() {
        let cluster = testbed(2, 1).cluster(7);
        let results = cluster.run(|ctx| {
            let comm = Comm::world(ctx);
            let mut clk = LocalClock::from_oscillator(Oscillator::perfect(), 0);
            // Client pre-advances its own time by 5 s.
            if comm.rank() == 1 {
                ctx.compute(hcs_sim::secs(5.0));
            }
            let mut alg = SkampiOffset::new(4);
            alg.measure_offset(ctx, &comm, &mut clk, 0, 1)
        });
        let off = results[1].unwrap();
        assert!(
            off.timestamp.raw_seconds() > 5.0,
            "timestamp {} must reflect client clock",
            off.timestamp
        );
    }

    #[test]
    fn mean_rtt_caches_rtt() {
        let cluster = testbed(2, 1).cluster(8);
        let counts = cluster.run(|ctx| {
            let comm = Comm::world(ctx);
            let mut clk = LocalClock::from_oscillator(Oscillator::perfect(), 0);
            let mut alg = MeanRttOffset::new(3);
            if comm.rank() <= 1 {
                for _ in 0..3 {
                    alg.measure_offset(ctx, &comm, &mut clk, 0, 1);
                }
            }
            ctx.counters().sent_msgs
        });
        // RTT phase: 10 timed + 1 warm-up ping-pongs -> 11 payload msgs (plus
        // engine acks, which are not counted as sent_msgs). Exchanges: 3
        // calls x 3 exchanges. Without caching the client would send far
        // more; with caching 11 + 9 = 20.
        assert_eq!(counts[1], 20, "client sent {}", counts[1]);
    }

    #[test]
    fn offset_spec_builds_and_labels() {
        assert_eq!(
            OffsetSpec::Skampi { nexchanges: 100 }.label(),
            "SKaMPI-Offset/100"
        );
        assert_eq!(
            OffsetSpec::MeanRtt { nexchanges: 20 }.label(),
            "Mean-RTT-Offset/20"
        );
        assert_eq!(
            OffsetSpec::Skampi { nexchanges: 5 }.build().name(),
            "SKaMPI-Offset"
        );
        assert_eq!(
            OffsetSpec::MeanRtt { nexchanges: 5 }.build().name(),
            "Mean-RTT-Offset"
        );
    }

    #[test]
    #[should_panic(expected = "neither ref")]
    fn third_party_call_panics() {
        let cluster = testbed(3, 1).cluster(9);
        cluster.run(|ctx| {
            let comm = Comm::world(ctx);
            let mut clk = LocalClock::from_oscillator(Oscillator::perfect(), 0);
            if comm.rank() == 2 {
                let mut alg = SkampiOffset::new(2);
                alg.measure_offset(ctx, &comm, &mut clk, 0, 1);
            }
        });
    }
}
