//! **JK** — the Jones & Koenig baseline: the reference synchronizes
//! every client one after the other, `O(p)` rounds.
//!
//! Accurate (each client learns directly against the reference clock)
//! but slow at scale — the paper measures ~60 s for 512 processes where
//! HCA3 needs ~2 s. The paper also reports (§III-C3) that swapping JK's
//! traditional Mean-RTT-Offset for SKaMPI-Offset improves its precision;
//! both are available here via [`OffsetSpec`].

use hcs_clock::{BoxClock, GlobalClockLM};
use hcs_mpi::Comm;
use hcs_sim::RankCtx;

use crate::learn::{learn_clock_model, LearnParams};
use crate::offset::OffsetSpec;
use crate::sync::ClockSync;

/// The JK synchronization algorithm.
#[derive(Debug, Clone)]
pub struct Jk {
    /// Regression parameters.
    pub params: LearnParams,
    /// Offset estimator building block (the paper's JK label uses 20
    /// ping-pongs with SKaMPI-Offset on Jupiter).
    pub offset: OffsetSpec,
}

impl Default for Jk {
    fn default() -> Self {
        Self {
            params: LearnParams {
                recompute_intercept: false,
                ..LearnParams::default()
            },
            offset: OffsetSpec::MeanRtt { nexchanges: 10 },
        }
    }
}

impl Jk {
    /// JK with explicit parameters.
    pub fn new(params: LearnParams, offset: OffsetSpec) -> Self {
        Self { params, offset }
    }

    /// The paper's improved configuration:
    /// `jk/<nfitpoints>/SKaMPI-Offset/<pingpongs>`.
    pub fn skampi(nfitpoints: usize, pingpongs: usize) -> Self {
        Self {
            params: LearnParams {
                nfitpoints,
                recompute_intercept: false,
                ..LearnParams::default()
            },
            offset: OffsetSpec::Skampi {
                nexchanges: pingpongs,
            },
        }
    }

    /// The traditional configuration with Mean-RTT-Offset.
    pub fn mean_rtt(nfitpoints: usize, pingpongs: usize) -> Self {
        Self {
            params: LearnParams {
                nfitpoints,
                recompute_intercept: false,
                ..LearnParams::default()
            },
            offset: OffsetSpec::MeanRtt {
                nexchanges: pingpongs,
            },
        }
    }

    /// Overrides the fit-point spacing (see `LearnParams::spacing_s`).
    pub fn with_spacing(mut self, spacing_s: hcs_sim::Span) -> Self {
        self.params.spacing_s = spacing_s;
        self
    }
}

impl ClockSync for Jk {
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock {
        let mut my_clk: BoxClock = GlobalClockLM::dummy(clk).boxed();
        let r = comm.rank();
        let mut offset_alg = self.offset.build();
        if r == 0 {
            for client in 1..comm.size() {
                if ctx.obs_on() {
                    ctx.obs_enter_seq("jk/client/ref", client as u32);
                }
                learn_clock_model(
                    ctx,
                    comm,
                    offset_alg.as_mut(),
                    self.params,
                    0,
                    client,
                    &mut my_clk,
                );
                ctx.obs_exit();
            }
        } else {
            if ctx.obs_on() {
                ctx.obs_enter_seq("jk/client/learn", r as u32);
            }
            let lm = learn_clock_model(
                ctx,
                comm,
                offset_alg.as_mut(),
                self.params,
                0,
                r,
                &mut my_clk,
            )
            .expect("client obtains a model");
            my_clk = GlobalClockLM::new(my_clk, lm).boxed();
            ctx.obs_exit();
        }
        my_clk
    }

    fn label(&self) -> String {
        format!("jk/{}/{}", self.params.nfitpoints, self.offset.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::run_sync;
    use hcs_clock::{Clock, LocalClock, TimeSource};
    use hcs_sim::machines::testbed;

    fn jk_run(nodes: usize, seed: u64, make: fn() -> Jk) -> (Vec<f64>, f64) {
        let cluster = testbed(nodes, 1).cluster(seed);
        let evals = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = make();
            let out = run_sync(&mut alg, ctx, &mut comm, Box::new(clk));
            (
                out.clock
                    .true_eval(hcs_sim::SimTime::from_secs(5.0))
                    .raw_seconds(),
                out.duration.seconds(),
            )
        });
        let reference = evals[0].0;
        let max_dur = evals.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
        (evals.iter().map(|(v, _)| v - reference).collect(), max_dur)
    }

    #[test]
    fn jk_skampi_syncs_accurately() {
        let (errs, _) = jk_run(6, 1, || Jk::skampi(40, 10));
        for (r, e) in errs.iter().enumerate() {
            assert!(e.abs() < 5e-6, "rank {r} err {e:.3e}");
        }
    }

    #[test]
    fn jk_mean_rtt_syncs() {
        let (errs, _) = jk_run(5, 2, || Jk::mean_rtt(40, 10));
        for (r, e) in errs.iter().enumerate() {
            assert!(e.abs() < 10e-6, "rank {r} err {e:.3e}");
        }
    }

    #[test]
    fn jk_duration_is_linear_in_p() {
        // O(p): doubling the processes should roughly double the
        // duration (contrast with HCA3's logarithmic growth).
        let (_, d4) = jk_run(4, 3, || Jk::skampi(15, 5));
        let (_, d8) = jk_run(8, 3, || Jk::skampi(15, 5));
        assert!(d8 > 1.5 * d4, "d4={d4:.4} d8={d8:.4}");
    }

    #[test]
    fn label() {
        assert_eq!(Jk::skampi(1000, 20).label(), "jk/1000/SKaMPI-Offset/20");
        assert_eq!(Jk::mean_rtt(100, 10).label(), "jk/100/Mean-RTT-Offset/10");
    }
}
