//! **HCA2** and **HCA** — the paper's previous-generation algorithms
//! (baselines; see \[10\] and Fig. 1a).
//!
//! HCA2 learns models *bottom-up* over an inverted binomial tree between
//! **local** clocks, merges (composes) them towards the root, and finally
//! distributes each rank's composed model with one `MPI_Scatter` —
//! `O(log p)` rounds. Composition compounds the per-edge model errors,
//! which is exactly the weakness HCA3 removes.
//!
//! HCA is HCA2 plus a final `O(p)` pass in which the root re-measures
//! the offset to every rank and each rank re-anchors its intercept.

use hcs_clock::{BoxClock, GlobalClockLM, LinearModel};
use hcs_mpi::Comm;
use hcs_sim::{RankCtx, Span, Tag};

use crate::learn::{learn_clock_model, LearnParams};
use crate::offset::OffsetSpec;
use crate::sync::ClockSync;

/// Tag for shipping composed model tables up the tree.
const TAG_TABLE: Tag = 0x0140;

/// The HCA2 synchronization algorithm.
#[derive(Debug, Clone)]
pub struct Hca2 {
    /// Regression parameters.
    pub params: LearnParams,
    /// Offset estimator building block.
    pub offset: OffsetSpec,
}

impl Default for Hca2 {
    fn default() -> Self {
        Self {
            params: LearnParams::default(),
            offset: OffsetSpec::Skampi { nexchanges: 10 },
        }
    }
}

impl Hca2 {
    /// HCA2 with explicit parameters.
    pub fn new(params: LearnParams, offset: OffsetSpec) -> Self {
        Self { params, offset }
    }

    /// `hca2/recompute intercept/<nfitpoints>/SKaMPI-Offset/<pingpongs>`.
    pub fn skampi(nfitpoints: usize, pingpongs: usize) -> Self {
        Self {
            params: LearnParams {
                nfitpoints,
                recompute_intercept: true,
                ..LearnParams::default()
            },
            offset: OffsetSpec::Skampi {
                nexchanges: pingpongs,
            },
        }
    }

    /// Overrides the fit-point spacing (see `LearnParams::spacing_s`).
    pub fn with_spacing(mut self, spacing_s: Span) -> Self {
        self.params.spacing_s = spacing_s;
        self
    }
}

/// Serialized table entry: (comm rank, slope, intercept).
fn pack_table(table: &[(usize, LinearModel)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(table.len() * 24);
    for &(rank, lm) in table {
        out.extend_from_slice(&(rank as u64).to_le_bytes());
        out.extend_from_slice(&lm.slope.to_le_bytes());
        out.extend_from_slice(&lm.intercept.to_le_bytes());
    }
    out
}

fn unpack_table(buf: &[u8]) -> Vec<(usize, LinearModel)> {
    assert_eq!(buf.len() % 24, 0, "malformed model table");
    buf.chunks_exact(24)
        .map(|c| {
            let rank =
                u64::from_le_bytes(c[0..8].try_into().expect("24-byte table record")) as usize;
            let slope = f64::from_le_bytes(c[8..16].try_into().expect("24-byte table record"));
            let intercept = f64::from_le_bytes(c[16..24].try_into().expect("24-byte table record"));
            (rank, LinearModel::new(slope, intercept))
        })
        .collect()
}

/// Shared tree phase of HCA2/HCA: learn local-clock models bottom-up,
/// merge towards rank 0, scatter. Returns this rank's model to rank 0's
/// local clock frame.
fn tree_sync(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    params: LearnParams,
    offset: OffsetSpec,
    clk: &mut BoxClock,
) -> LinearModel {
    let nprocs = comm.size();
    let r = comm.rank();
    let mut offset_alg = offset.build();

    let mut nrounds = 0usize;
    while (1usize << (nrounds + 1)) <= nprocs {
        nrounds += 1;
    }
    let max_power = 1usize << nrounds;

    // My table maps rank -> model into *my* local clock frame.
    let mut table: Vec<(usize, LinearModel)> = vec![(r, LinearModel::IDENTITY)];

    // Fold the ranks beyond the largest power of two in first, so their
    // models travel up the tree with everything else.
    if r >= max_power {
        let p_ref = r - max_power;
        if ctx.obs_on() {
            ctx.obs_enter("hca2/foldin/client");
        }
        let lm = learn_clock_model(ctx, comm, offset_alg.as_mut(), params, p_ref, r, clk)
            .expect("client obtains a model");
        // lm maps my readings into p_ref's frame.
        let composed: Vec<(usize, LinearModel)> = table
            .iter()
            .map(|&(g, m)| (g, LinearModel::compose(&lm, &m)))
            .collect();
        ctx.send(comm.global_rank(p_ref), TAG_TABLE, &pack_table(&composed));
        ctx.obs_exit();
    } else {
        if r + max_power < nprocs {
            let client = r + max_power;
            if ctx.obs_on() {
                ctx.obs_enter("hca2/foldin/ref");
            }
            learn_clock_model(ctx, comm, offset_alg.as_mut(), params, r, client, clk);
            let buf = ctx.recv(comm.global_rank(client), TAG_TABLE);
            table.extend(unpack_table(&buf));
            ctx.obs_exit();
        }

        // Inverted binomial tree: leaves first (Fig. 1a).
        for i in 1..=nrounds {
            let running_power = 1usize << i;
            let next_power = 1usize << (i - 1);
            if r % running_power == next_power {
                // Client of r - next_power: learn, compose my whole
                // subtree's models into the parent frame, ship them.
                let p_ref = r - next_power;
                if ctx.obs_on() {
                    ctx.obs_enter_seq("hca2/round/client", i as u32);
                }
                let lm = learn_clock_model(ctx, comm, offset_alg.as_mut(), params, p_ref, r, clk)
                    .expect("client obtains a model");
                let composed: Vec<(usize, LinearModel)> = table
                    .iter()
                    .map(|&(g, m)| (g, LinearModel::compose(&lm, &m)))
                    .collect();
                ctx.send(comm.global_rank(p_ref), TAG_TABLE, &pack_table(&composed));
                ctx.obs_exit();
                break;
            } else if r.is_multiple_of(running_power) {
                let client = r + next_power;
                if client < max_power {
                    if ctx.obs_on() {
                        ctx.obs_enter_seq("hca2/round/ref", i as u32);
                    }
                    learn_clock_model(ctx, comm, offset_alg.as_mut(), params, r, client, clk);
                    let buf = ctx.recv(comm.global_rank(client), TAG_TABLE);
                    table.extend(unpack_table(&buf));
                    ctx.obs_exit();
                }
            }
        }
    }

    // Root scatters each rank's model (paper Fig. 1a bottom).
    if ctx.obs_on() {
        ctx.obs_enter("hca2/scatter");
    }
    let chunks: Option<Vec<Vec<u8>>> = if r == 0 {
        let mut per_rank = vec![LinearModel::IDENTITY; nprocs];
        assert_eq!(
            table.len(),
            nprocs,
            "root collected {} of {nprocs} models",
            table.len()
        );
        for (g, m) in table {
            per_rank[g] = m;
        }
        Some(per_rank.iter().map(|m| pack_table(&[(0, *m)])).collect())
    } else {
        None
    };
    let mine = comm.scatter(ctx, 0, chunks.as_deref());
    let lm_mine = unpack_table(&mine)[0].1;
    ctx.obs_exit();
    lm_mine
}

impl ClockSync for Hca2 {
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock {
        let mut clk: BoxClock = GlobalClockLM::dummy(clk).boxed();
        if comm.size() <= 1 {
            return clk;
        }
        let lm = tree_sync(ctx, comm, self.params, self.offset, &mut clk);
        GlobalClockLM::new(clk, lm).boxed()
    }

    fn label(&self) -> String {
        let ri = if self.params.recompute_intercept {
            "recompute_intercept/"
        } else {
            ""
        };
        format!(
            "hca2/{ri}{}/{}",
            self.params.nfitpoints,
            self.offset.label()
        )
    }
}

/// The HCA synchronization algorithm: HCA2's tree phase plus a final
/// sequential intercept-adjustment round between the root and every
/// other rank (making it technically `O(p)`).
#[derive(Debug, Clone)]
pub struct Hca {
    /// Regression parameters.
    pub params: LearnParams,
    /// Offset estimator building block.
    pub offset: OffsetSpec,
}

impl Default for Hca {
    fn default() -> Self {
        Self {
            params: LearnParams::default(),
            offset: OffsetSpec::Skampi { nexchanges: 10 },
        }
    }
}

impl Hca {
    /// `hca/<nfitpoints>/SKaMPI-Offset/<pingpongs>`.
    pub fn skampi(nfitpoints: usize, pingpongs: usize) -> Self {
        Self {
            params: LearnParams {
                nfitpoints,
                recompute_intercept: false,
                ..LearnParams::default()
            },
            offset: OffsetSpec::Skampi {
                nexchanges: pingpongs,
            },
        }
    }

    /// Overrides the fit-point spacing (see `LearnParams::spacing_s`).
    pub fn with_spacing(mut self, spacing_s: Span) -> Self {
        self.params.spacing_s = spacing_s;
        self
    }
}

impl ClockSync for Hca {
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock {
        let mut clk: BoxClock = GlobalClockLM::dummy(clk).boxed();
        if comm.size() <= 1 {
            return clk;
        }
        let mut lm = tree_sync(ctx, comm, self.params, self.offset, &mut clk);

        // Final O(p) pass: re-anchor every intercept against the root,
        // measured between the *base* clocks (the root serves clients in
        // rank order; message matching sequences this naturally).
        let mut offset_alg = self.offset.build();
        let r = comm.rank();
        if ctx.obs_on() {
            ctx.obs_enter("hca/reanchor");
        }
        if r == 0 {
            for client in 1..comm.size() {
                offset_alg.measure_offset(ctx, comm, &mut clk, 0, client);
            }
        } else {
            let o = offset_alg
                .measure_offset(ctx, comm, &mut clk, 0, r)
                .expect("client obtains an offset");
            lm.reanchor(o.timestamp, o.offset);
        }
        ctx.obs_exit();
        GlobalClockLM::new(clk, lm).boxed()
    }

    fn label(&self) -> String {
        format!("hca/{}/{}", self.params.nfitpoints, self.offset.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::run_sync;
    use hcs_clock::{Clock, LocalClock, TimeSource};
    use hcs_sim::machines::{quiet_testbed, testbed};

    fn run_and_measure<F>(make: F, nodes: usize, cores: usize, seed: u64, quiet: bool) -> Vec<f64>
    where
        F: Fn() -> Box<dyn ClockSync> + Sync,
    {
        let machine = if quiet {
            quiet_testbed(nodes, cores)
        } else {
            testbed(nodes, cores)
        };
        let cluster = machine.cluster(seed);
        let evals = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = make();
            let out = run_sync(alg.as_mut(), ctx, &mut comm, Box::new(clk));
            out.clock
                .true_eval(hcs_sim::SimTime::from_secs(5.0))
                .raw_seconds()
        });
        let reference = evals[0];
        evals.iter().map(|v| v - reference).collect()
    }

    #[test]
    fn hca2_quiet_network_is_exact() {
        let errs = run_and_measure(|| Box::new(Hca2::skampi(30, 5)), 4, 2, 1, true);
        for (r, e) in errs.iter().enumerate() {
            assert!(e.abs() < 1e-7, "rank {r} err {e:.3e}");
        }
    }

    #[test]
    fn hca2_realistic_network_syncs() {
        let errs = run_and_measure(|| Box::new(Hca2::skampi(40, 10)), 8, 2, 2, false);
        for (r, e) in errs.iter().enumerate() {
            assert!(e.abs() < 8e-6, "rank {r} err {e:.3e}");
        }
    }

    #[test]
    fn hca_realistic_network_syncs() {
        let errs = run_and_measure(|| Box::new(Hca::skampi(40, 10)), 8, 2, 3, false);
        for (r, e) in errs.iter().enumerate() {
            assert!(e.abs() < 8e-6, "rank {r} err {e:.3e}");
        }
    }

    #[test]
    fn hca2_non_power_of_two() {
        for p in [3usize, 5, 6] {
            let errs =
                run_and_measure(|| Box::new(Hca2::skampi(30, 8)), p, 1, 20 + p as u64, false);
            assert_eq!(errs.len(), p);
            for (r, e) in errs.iter().enumerate() {
                assert!(e.abs() < 8e-6, "p={p} rank {r} err {e:.3e}");
            }
        }
    }

    #[test]
    fn table_pack_roundtrip() {
        let t = vec![
            (3usize, LinearModel::new(1e-6, -2.0)),
            (7, LinearModel::new(-5e-7, 0.25)),
        ];
        assert_eq!(unpack_table(&pack_table(&t)), t);
    }

    #[test]
    fn labels() {
        assert_eq!(
            Hca2::skampi(1000, 100).label(),
            "hca2/recompute_intercept/1000/SKaMPI-Offset/100"
        );
        assert_eq!(Hca::skampi(1000, 100).label(), "hca/1000/SKaMPI-Offset/100");
    }
}
