//! **HlHCA** — hierarchical clock synchronization (paper §IV).
//!
//! A different clock synchronization algorithm can run at each
//! architectural level of the machine. The generic [`Hierarchical`]
//! scheme takes an ordered list of [`LevelPlan`]s (top/widest level
//! first); each level builds its communicator (a real, paid-for
//! `MPI_Comm_split`, as in the paper, which includes communicator
//! creation in the measured synchronization time) and — if this rank is
//! a member and the communicator is non-trivial — runs its algorithm,
//! threading the resulting clock into the next level.
//!
//! Ready-made realizations:
//! - [`Hierarchical::h2`] — **H2HCA** (Algorithm 4): inter-node level +
//!   intra-node level,
//! - [`Hierarchical::h3`] — **H3HCA** (§IV-D): inter-node +
//!   socket-leaders-per-node + intra-socket.
//!
//! Semantics requirement (paper §IV-C): `ClockPropSync` may only be the
//! algorithm of a level whose communicators live inside one
//! time-source domain; all other algorithms compose freely.

use hcs_clock::BoxClock;
use hcs_mpi::Comm;
use hcs_sim::RankCtx;

use crate::sync::ClockSync;

/// Which ranks form the communicators of a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelScope {
    /// One communicator of all node leaders (lowest member per node).
    NodeLeaders,
    /// Per node: a communicator of that node's socket leaders.
    SocketLeadersPerNode,
    /// Per node: all members on that node (`MPI_COMM_TYPE_SHARED`).
    Node,
    /// Per socket: all members on that socket.
    Socket,
}

/// One level of the hierarchy: scope + algorithm.
pub struct LevelPlan {
    /// Which communicator this level builds.
    pub scope: LevelScope,
    /// The synchronization algorithm applied on it.
    pub alg: Box<dyn ClockSync>,
}

impl LevelPlan {
    /// Creates a level plan.
    pub fn new(scope: LevelScope, alg: Box<dyn ClockSync>) -> Self {
        Self { scope, alg }
    }
}

/// The generic HlHCA scheme.
pub struct Hierarchical {
    /// Levels from top (widest) to bottom (narrowest).
    pub levels: Vec<LevelPlan>,
}

impl Hierarchical {
    /// **H2HCA**: `top` between node leaders, `bottom` within each node.
    pub fn h2(top: Box<dyn ClockSync>, bottom: Box<dyn ClockSync>) -> Self {
        Self {
            levels: vec![
                LevelPlan::new(LevelScope::NodeLeaders, top),
                LevelPlan::new(LevelScope::Node, bottom),
            ],
        }
    }

    /// **H3HCA**: `top` between node leaders, `mid` among each node's
    /// socket leaders, `bottom` within each socket.
    pub fn h3(
        top: Box<dyn ClockSync>,
        mid: Box<dyn ClockSync>,
        bottom: Box<dyn ClockSync>,
    ) -> Self {
        Self {
            levels: vec![
                LevelPlan::new(LevelScope::NodeLeaders, top),
                LevelPlan::new(LevelScope::SocketLeadersPerNode, mid),
                LevelPlan::new(LevelScope::Socket, bottom),
            ],
        }
    }

    fn build_level(&self, ctx: &mut RankCtx, comm: &mut Comm, scope: LevelScope) -> Option<Comm> {
        match scope {
            LevelScope::NodeLeaders => comm.split_node_leaders(ctx),
            LevelScope::Node => Some(comm.split_shared_node(ctx)),
            LevelScope::Socket => Some(comm.split_socket(ctx)),
            LevelScope::SocketLeadersPerNode => {
                // Socket leaders join, colored by node.
                let topo = comm
                    .members()
                    .iter()
                    .position(|&g| {
                        ctx.topology().socket_of(g) == ctx.topology().socket_of(ctx.rank())
                    })
                    .expect("this rank's socket appears among members");
                let i_am_socket_leader = comm.global_rank(topo) == ctx.rank();
                let color = if i_am_socket_leader {
                    Some(ctx.topology().node_of(ctx.rank()) as u64)
                } else {
                    None
                };
                comm.split(ctx, color, comm.rank() as u64)
            }
        }
    }
}

impl ClockSync for Hierarchical {
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock {
        // Build all level communicators first (collective calls —
        // everyone participates), then run the per-level algorithms.
        let scopes: Vec<LevelScope> = self.levels.iter().map(|l| l.scope).collect();
        let mut level_comms: Vec<Option<Comm>> = scopes
            .iter()
            .map(|&s| self.build_level(ctx, comm, s))
            .collect();

        let mut clk = clk;
        for (lvl, (plan, level_comm)) in self
            .levels
            .iter_mut()
            .zip(level_comms.iter_mut())
            .enumerate()
        {
            if let Some(lc) = level_comm {
                if lc.size() > 1 {
                    if ctx.obs_on() {
                        ctx.obs_enter_seq(&format!("hier/level/{}", plan.alg.label()), lvl as u32);
                    }
                    clk = plan.alg.sync_clocks(ctx, lc, clk);
                    ctx.obs_exit();
                }
            }
        }
        clk
    }

    fn label(&self) -> String {
        let mut parts = Vec::new();
        let names = ["Top", "Mid", "Bottom"];
        for (i, plan) in self.levels.iter().enumerate() {
            let tier = if self.levels.len() == 2 && i == 1 {
                "Bottom"
            } else {
                names.get(i).copied().unwrap_or("Level")
            };
            parts.push(format!("{tier}/{}", plan.alg.label()));
        }
        parts.join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clockprop::ClockPropSync;
    use crate::hca3::Hca3;
    use crate::sync::run_sync;
    use hcs_clock::{Clock, LocalClock, TimeSource};
    use hcs_sim::machines::{jupiter, testbed};

    fn h2_errors(nodes: usize, cores: usize, seed: u64) -> (Vec<f64>, f64) {
        let cluster = testbed(nodes, cores).cluster(seed);
        let evals = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hierarchical::h2(
                Box::new(Hca3::skampi(40, 10)),
                Box::new(ClockPropSync::verified()),
            );
            let out = run_sync(&mut alg, ctx, &mut comm, Box::new(clk));
            (
                out.clock
                    .true_eval(hcs_sim::SimTime::from_secs(5.0))
                    .raw_seconds(),
                out.duration.seconds(),
            )
        });
        let reference = evals[0].0;
        let dur = evals.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
        (evals.iter().map(|(v, _)| v - reference).collect(), dur)
    }

    #[test]
    fn h2hca_synchronizes_whole_cluster() {
        let (errs, _) = h2_errors(6, 4, 1);
        for (r, e) in errs.iter().enumerate() {
            assert!(e.abs() < 5e-6, "rank {r} err {e:.3e}");
        }
    }

    #[test]
    fn h2hca_is_faster_than_flat_hca3() {
        let cluster = testbed(8, 4).cluster(2);
        let flat = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hca3::skampi(30, 8);
            run_sync(&mut alg, ctx, &mut comm, Box::new(clk))
                .duration
                .seconds()
        });
        let hier = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hierarchical::h2(
                Box::new(Hca3::skampi(30, 8)),
                Box::new(ClockPropSync::verified()),
            );
            run_sync(&mut alg, ctx, &mut comm, Box::new(clk))
                .duration
                .seconds()
        });
        let flat_d = flat.into_iter().fold(0.0f64, f64::max);
        let hier_d = hier.into_iter().fold(0.0f64, f64::max);
        // log2(32)=5 rounds vs log2(8)=3 rounds + cheap propagation.
        assert!(hier_d < flat_d, "hier {hier_d:.4} vs flat {flat_d:.4}");
    }

    #[test]
    fn h3hca_on_dual_socket_machine() {
        let cluster = jupiter().with_shape(3, 2, 4).cluster(3);
        let evals = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hierarchical::h3(
                Box::new(Hca3::skampi(30, 8)),
                Box::new(ClockPropSync::verified()),
                Box::new(ClockPropSync::verified()),
            );
            let out = run_sync(&mut alg, ctx, &mut comm, Box::new(clk));
            out.clock
                .true_eval(hcs_sim::SimTime::from_secs(5.0))
                .raw_seconds()
        });
        for (r, v) in evals.iter().enumerate() {
            let e = v - evals[0];
            assert!(e.abs() < 5e-6, "rank {r} err {e:.3e}");
        }
    }

    #[test]
    fn single_node_skips_top_level() {
        let (errs, _) = h2_errors(1, 4, 4);
        for e in errs {
            assert!(e.abs() < 1e-9, "single node should be exact, err {e:.3e}");
        }
    }

    #[test]
    fn label_mentions_levels() {
        let alg = Hierarchical::h2(
            Box::new(Hca3::skampi(1000, 100)),
            Box::new(ClockPropSync::default()),
        );
        assert_eq!(
            alg.label(),
            "Top/hca3/recompute_intercept/1000/SKaMPI-Offset/100/Bottom/ClockPropagation"
        );
    }
}
