#![warn(missing_docs)]

//! # hcs-core — the clock synchronization algorithms of CLUSTER'18
//!
//! This crate is the paper's primary contribution, implemented from its
//! pseudo-code:
//!
//! - [`offset`] — the two clock-offset building blocks: **SKaMPI-Offset**
//!   (Algorithm 7: min-filtered ping-pong bounds) and **Mean-RTT-Offset**
//!   (Algorithm 8, Jones/Koenig: mean RTT + median offset),
//! - [`learn`] — `LEARN_CLOCK_MODEL` (Algorithm 2): gather fit points
//!   with an offset algorithm, least-squares fit, optional intercept
//!   recomputation,
//! - [`hca3`] — **HCA3** (Algorithm 1): top-down binomial tree, clients
//!   emulate the reference clock in later rounds,
//! - [`hca2`] — **HCA2** and **HCA** baselines: bottom-up inverted
//!   binomial tree with model merging + `MPI_Scatter` (HCA adds a final
//!   `O(p)` intercept round),
//! - [`jk`] — the **JK** baseline (Jones & Koenig): `O(p)` sequential
//!   pairwise synchronization,
//! - [`clockprop`] — **ClockPropSync** (Algorithm 3): broadcast of the
//!   flattened clock model within a shared-time-source domain,
//! - [`hierarchical`] — **HlHCA** (Algorithm 4 and §IV-D): per-level
//!   algorithm composition, with ready-made **H2HCA** and **H3HCA**,
//! - [`check`] — `Check-Global-Clock` (Algorithm 6): the accuracy
//!   evaluation used by every experiment, plus a true-clock oracle.

pub mod check;
pub mod clockprop;
pub mod hca2;
pub mod hca3;
pub mod hierarchical;
pub mod jk;
pub mod learn;
pub mod offset;
pub mod offset_only;
pub mod resync;
pub mod sync;

pub use check::{check_clock_accuracy, oracle_offset, AccuracyReport};
pub use clockprop::ClockPropSync;
pub use hca2::{Hca, Hca2};
pub use hca3::Hca3;
pub use hierarchical::{Hierarchical, LevelPlan};
pub use jk::Jk;
pub use learn::{learn_clock_model, LearnParams};
pub use offset::{
    ClockOffset, MeanRttOffset, OffsetAlgorithm, OffsetParams, OffsetSpec, SkampiOffset,
};
pub use offset_only::OffsetOnlySync;
pub use resync::ResyncSession;
pub use sync::{run_sync, run_sync_with_timeout, ClockSync, SyncFactory, SyncOutcome};

/// One-stop imports for downstream crates.
pub mod prelude {
    pub use crate::check::{check_clock_accuracy, oracle_offset, AccuracyReport};
    pub use crate::clockprop::ClockPropSync;
    pub use crate::hca2::{Hca, Hca2};
    pub use crate::hca3::Hca3;
    pub use crate::hierarchical::{Hierarchical, LevelPlan};
    pub use crate::jk::Jk;
    pub use crate::learn::{learn_clock_model, LearnParams};
    pub use crate::offset::{
        ClockOffset, MeanRttOffset, OffsetAlgorithm, OffsetParams, OffsetSpec, SkampiOffset,
    };
    pub use crate::offset_only::OffsetOnlySync;
    pub use crate::resync::ResyncSession;
    pub use crate::sync::{run_sync, run_sync_with_timeout, ClockSync, SyncFactory, SyncOutcome};
}
