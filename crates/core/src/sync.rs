//! The common interface of all clock synchronization algorithms.

use hcs_clock::BoxClock;
use hcs_mpi::Comm;
use hcs_sim::{RankCtx, Span};

/// A clock synchronization algorithm (the paper's `SYNC_CLOCKS`).
///
/// Called *collectively*: every member of `comm` invokes it with its own
/// context and base clock; the implementations exchange messages among
/// themselves. The returned clock of every non-reference member emulates
/// the reference clock of communicator rank 0; rank 0 gets its input
/// back (possibly dummy-wrapped).
///
/// The base clock may itself be a logical global clock — that is what
/// makes algorithms composable into hierarchical schemes (§IV).
pub trait ClockSync: Send {
    /// Synchronizes the communicator and returns this rank's logical
    /// global clock.
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock;

    /// A human-readable label in the paper's style, e.g.
    /// `"hca3/recompute_intercept/1000/SKaMPI-Offset/100"`.
    fn label(&self) -> String;
}

/// A thread-shareable constructor for a synchronization algorithm —
/// experiment drivers build one instance per simulated rank from it.
pub type SyncFactory = Box<dyn Fn() -> Box<dyn ClockSync> + Sync>;

/// The result of a timed synchronization run.
pub struct SyncOutcome {
    /// The logical global clock of this rank.
    pub clock: BoxClock,
    /// Virtual wall-clock duration of the synchronization on this rank.
    /// (The paper's "synchronization duration"; for figures use the
    /// maximum over ranks.)
    pub duration: Span,
}

/// Runs `sync` and measures its duration on this rank. When
/// observability is enabled, the whole synchronization is wrapped in a
/// span named `sync/<label>`, with the algorithms' own per-round spans
/// nested inside it.
pub fn run_sync(
    sync: &mut dyn ClockSync,
    ctx: &mut RankCtx,
    comm: &mut Comm,
    clk: BoxClock,
) -> SyncOutcome {
    if ctx.obs_on() {
        ctx.obs_enter(&format!("sync/{}", sync.label()));
    }
    let start = ctx.now();
    let clock = sync.sync_clocks(ctx, comm, clk);
    let duration = ctx.now() - start;
    ctx.obs_exit();
    SyncOutcome { clock, duration }
}
