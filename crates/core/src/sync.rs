//! The common interface of all clock synchronization algorithms.

use hcs_clock::BoxClock;
use hcs_mpi::Comm;
use hcs_sim::{RankCtx, Span};

/// A clock synchronization algorithm (the paper's `SYNC_CLOCKS`).
///
/// Called *collectively*: every member of `comm` invokes it with its own
/// context and base clock; the implementations exchange messages among
/// themselves. The returned clock of every non-reference member emulates
/// the reference clock of communicator rank 0; rank 0 gets its input
/// back (possibly dummy-wrapped).
///
/// The base clock may itself be a logical global clock — that is what
/// makes algorithms composable into hierarchical schemes (§IV).
pub trait ClockSync: Send {
    /// Synchronizes the communicator and returns this rank's logical
    /// global clock.
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock;

    /// A human-readable label in the paper's style, e.g.
    /// `"hca3/recompute_intercept/1000/SKaMPI-Offset/100"`.
    fn label(&self) -> String;
}

/// A thread-shareable constructor for a synchronization algorithm —
/// experiment drivers build one instance per simulated rank from it.
pub type SyncFactory = Box<dyn Fn() -> Box<dyn ClockSync> + Sync>;

/// The result of a timed synchronization run.
pub struct SyncOutcome {
    /// The logical global clock of this rank.
    pub clock: BoxClock,
    /// Virtual wall-clock duration of the synchronization on this rank.
    /// (The paper's "synchronization duration"; for figures use the
    /// maximum over ranks.)
    pub duration: Span,
}

/// Runs `sync` and measures its duration on this rank. When
/// observability is enabled, the whole synchronization is wrapped in a
/// span named `sync/<label>`, with the algorithms' own per-round spans
/// nested inside it.
pub fn run_sync(
    sync: &mut dyn ClockSync,
    ctx: &mut RankCtx,
    comm: &mut Comm,
    clk: BoxClock,
) -> SyncOutcome {
    if ctx.obs_on() {
        ctx.obs_enter(&format!("sync/{}", sync.label()));
    }
    let start = ctx.now();
    let clock = sync.sync_clocks(ctx, comm, clk);
    let duration = ctx.now() - start;
    ctx.obs_exit();
    SyncOutcome { clock, duration }
}

/// [`run_sync`] under a per-receive timeout policy: every blocking
/// receive the algorithm issues (directly or through `Comm`) carries an
/// implicit deadline of `per_recv` virtual seconds, so message loss or a
/// partition degrades into a per-rank timeout outcome (see
/// `Cluster::run_outcome`) instead of a wait-graph hang. The previous
/// timeout policy is restored before returning, even though a timeout
/// itself unwinds out of this function.
pub fn run_sync_with_timeout(
    sync: &mut dyn ClockSync,
    ctx: &mut RankCtx,
    comm: &mut Comm,
    clk: BoxClock,
    per_recv: Span,
) -> SyncOutcome {
    let prev = ctx.recv_timeout();
    ctx.set_recv_timeout(Some(per_recv));
    let out = run_sync(sync, ctx, comm, clk);
    ctx.set_recv_timeout(prev);
    out
}
