//! Periodic re-synchronization.
//!
//! The paper (§II, §III-C2, citing Doleschal et al.) observes that clock
//! drift is only linear over ~10-20 s, so "if MPI tracing tools want to
//! exploit global timestamps then they have to re-synchronize clocks
//! periodically". [`ResyncSession`] packages that: an application (or
//! tracing layer) calls [`ResyncSession::maybe_resync`] at convenient
//! collective points (e.g. iteration boundaries); when the reference
//! decides the interval has elapsed, a fresh synchronization runs and
//! the global clock is replaced.

use hcs_clock::{BoxClock, Clock, GlobalTime};
use hcs_mpi::Comm;
use hcs_sim::{RankCtx, SimTime, Span};

use crate::sync::ClockSync;

/// A long-running global clock that re-synchronizes itself every
/// `interval_s` (decided by the reference rank, announced with
/// a broadcast so every member acts in lockstep).
pub struct ResyncSession {
    clock: BoxClock,
    interval_s: Span,
    last_sync_reading: GlobalTime,
    resyncs: usize,
}

impl ResyncSession {
    /// Starts a session by synchronizing once. Collective.
    pub fn start(
        ctx: &mut RankCtx,
        comm: &mut Comm,
        alg: &mut dyn ClockSync,
        base: BoxClock,
        interval_s: Span,
    ) -> Self {
        assert!(interval_s > Span::ZERO, "resync interval must be positive");
        let mut clock = alg.sync_clocks(ctx, comm, base);
        let last_sync_reading = clock.get_time(ctx);
        Self {
            clock,
            interval_s,
            last_sync_reading,
            resyncs: 0,
        }
    }

    /// The current global clock.
    pub fn clock(&mut self) -> &mut BoxClock {
        &mut self.clock
    }

    /// How many re-synchronizations have happened (excluding the start).
    pub fn resyncs(&self) -> usize {
        self.resyncs
    }

    /// Collective checkpoint: the reference decides whether the interval
    /// elapsed; if so, everyone re-synchronizes (the new models are
    /// learned on top of the current global clock, so the decorator
    /// chain grows by one level per resync). Returns whether a resync
    /// happened.
    pub fn maybe_resync(
        &mut self,
        ctx: &mut RankCtx,
        comm: &mut Comm,
        alg: &mut dyn ClockSync,
    ) -> bool {
        let due = if comm.rank() == 0 {
            let now = self.clock.get_time(ctx);
            if now - self.last_sync_reading >= self.interval_s {
                1.0
            } else {
                0.0
            }
        } else {
            0.0
        };
        let due = comm.bcast_f64(ctx, 0, due) != 0.0;
        if due {
            // Temporarily replace with a dummy so we can move the clock.
            let old = std::mem::replace(&mut self.clock, Box::new(NullClock) as BoxClock);
            self.clock = alg.sync_clocks(ctx, comm, old);
            self.last_sync_reading = self.clock.get_time(ctx);
            self.resyncs += 1;
        }
        due
    }
}

/// Placeholder used only during the swap inside `maybe_resync`.
struct NullClock;

impl Clock for NullClock {
    fn get_time(&mut self, _ctx: &mut RankCtx) -> GlobalTime {
        unreachable!("NullClock must never be read")
    }
    fn true_eval(&self, _t: SimTime) -> GlobalTime {
        unreachable!("NullClock must never be read")
    }
    fn drift_rate(&self, _t: SimTime) -> f64 {
        unreachable!("NullClock must never be read")
    }
    fn collect_models(&self, _out: &mut Vec<hcs_clock::LinearModel>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hca3::Hca3;
    use hcs_clock::{LocalClock, TimeSource};
    use hcs_sim::machines::testbed;
    use hcs_sim::{secs, ClockSpec};

    /// Strong wander so linear models age quickly — resync must help.
    fn wandery_machine() -> hcs_sim::MachineSpec {
        let mut m = testbed(4, 1);
        m.clock = ClockSpec {
            skew_sd_ppm: 0.5,
            wander_amp_ppm: 0.5,
            wander_period_s: secs(60.0),
            ..ClockSpec::commodity()
        };
        m
    }

    fn final_error(resync_every: Option<f64>) -> f64 {
        let horizon = SimTime::from_secs(60.0);
        let cluster = wandery_machine().cluster(5);
        let evals = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hca3::skampi(40, 8);
            let mut session = ResyncSession::start(
                ctx,
                &mut comm,
                &mut alg,
                Box::new(clk),
                secs(resync_every.unwrap_or(f64::INFINITY)),
            );
            // Application loop: compute 2 s per iteration, checkpoint.
            while ctx.now() < horizon {
                ctx.compute(secs(2.0));
                session.maybe_resync(ctx, &mut comm, &mut alg);
            }
            (
                session.clock().true_eval(horizon + secs(1.0)).raw_seconds(),
                session.resyncs(),
            )
        });
        evals
            .iter()
            .map(|(v, _)| (v - evals[0].0).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn resync_beats_single_sync_over_long_horizons() {
        let without = final_error(None);
        let with = final_error(Some(10.0));
        assert!(
            with < without * 0.5,
            "resync err {with:.3e} should be far below single-sync err {without:.3e}"
        );
    }

    #[test]
    fn resync_counter_counts() {
        let cluster = wandery_machine().cluster(6);
        let counts = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hca3::skampi(20, 5);
            let mut session =
                ResyncSession::start(ctx, &mut comm, &mut alg, Box::new(clk), secs(5.0));
            for _ in 0..10 {
                ctx.compute(secs(2.0));
                session.maybe_resync(ctx, &mut comm, &mut alg);
            }
            session.resyncs()
        });
        assert!(counts.iter().all(|&c| c == counts[0]));
        assert!(
            counts[0] >= 2,
            "expected several resyncs, got {}",
            counts[0]
        );
    }

    #[test]
    fn no_resync_before_interval() {
        let cluster = testbed(2, 1).cluster(7);
        cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hca3::skampi(20, 5);
            let mut session =
                ResyncSession::start(ctx, &mut comm, &mut alg, Box::new(clk), secs(1e6));
            for _ in 0..3 {
                ctx.compute(secs(0.5));
                assert!(!session.maybe_resync(ctx, &mut comm, &mut alg));
            }
            assert_eq!(session.resyncs(), 0);
        });
    }
}
