//! Offset-only synchronization — the SKaMPI/NBCBench-style baseline.
//!
//! The paper's premise (§II): "the clock models used in SKaMPI and
//! NBCBench do not account for the clock drift, and thus, the precision
//! of the logical, global clock quickly degrades over time". This
//! algorithm reproduces that behavior: every client measures its offset
//! to the reference *once* and applies a constant-offset model
//! (slope = 0). Great immediately after synchronization, useless a few
//! tens of seconds later — the motivation for HCA's linear drift models.

use hcs_clock::{BoxClock, GlobalClockLM, LinearModel};
use hcs_mpi::Comm;
use hcs_sim::RankCtx;

use crate::offset::OffsetSpec;
use crate::sync::ClockSync;

/// Constant-offset synchronization (no drift model), `O(p)` rounds like
/// the original SKaMPI scheme.
#[derive(Debug, Clone)]
pub struct OffsetOnlySync {
    /// Offset estimator building block.
    pub offset: OffsetSpec,
}

impl Default for OffsetOnlySync {
    fn default() -> Self {
        Self {
            offset: OffsetSpec::Skampi { nexchanges: 100 },
        }
    }
}

impl OffsetOnlySync {
    /// With the given number of ping-pongs for the single measurement.
    pub fn new(nexchanges: usize) -> Self {
        Self {
            offset: OffsetSpec::Skampi { nexchanges },
        }
    }
}

impl ClockSync for OffsetOnlySync {
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock {
        let mut my_clk: BoxClock = GlobalClockLM::dummy(clk).boxed();
        let r = comm.rank();
        let mut alg = self.offset.build();
        if r == 0 {
            for client in 1..comm.size() {
                alg.measure_offset(ctx, comm, &mut my_clk, 0, client);
            }
        } else {
            let o = alg
                .measure_offset(ctx, comm, &mut my_clk, 0, r)
                .expect("client obtains an offset");
            my_clk = GlobalClockLM::new(my_clk, LinearModel::new(0.0, o.offset.seconds())).boxed();
        }
        my_clk
    }

    fn label(&self) -> String {
        format!("offset_only/{}", self.offset.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hca3::Hca3;
    use hcs_clock::{Clock, LocalClock, TimeSource};
    use hcs_sim::machines::testbed;

    fn errors(make: &(dyn Fn() -> Box<dyn ClockSync> + Sync), at: f64, seed: u64) -> f64 {
        let cluster = testbed(4, 1).cluster(seed);
        let evals = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = make();
            let g = alg.sync_clocks(ctx, &mut comm, Box::new(clk));
            g.true_eval(hcs_sim::SimTime::from_secs(at)).raw_seconds()
        });
        evals
            .iter()
            .map(|v| (v - evals[0]).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn accurate_at_first_degrades_over_time() {
        let mk: &(dyn Fn() -> Box<dyn ClockSync> + Sync) =
            &|| Box::new(OffsetOnlySync::new(20)) as Box<dyn ClockSync>;
        let e_now = errors(mk, 0.5, 1);
        let e_later = errors(mk, 60.5, 1);
        assert!(e_now < 2e-6, "right after sync: {e_now:.3e}");
        // With ~0.5 ppm skews, 60 s of unmodeled drift is tens of us.
        assert!(e_later > 10e-6, "after 60 s: {e_later:.3e}");
        assert!(e_later > 10.0 * e_now);
    }

    #[test]
    fn drift_models_fix_what_offsets_cannot() {
        // The same horizon with HCA3's drift model stays microsecond-level.
        let offset_only: &(dyn Fn() -> Box<dyn ClockSync> + Sync) =
            &|| Box::new(OffsetOnlySync::new(20)) as Box<dyn ClockSync>;
        let hca3: &(dyn Fn() -> Box<dyn ClockSync> + Sync) =
            &|| Box::new(Hca3::skampi(40, 10)) as Box<dyn ClockSync>;
        let base = errors(offset_only, 30.5, 2);
        let with_model = errors(hca3, 30.5, 2);
        assert!(
            with_model < base / 3.0,
            "hca3 {with_model:.3e} vs offset-only {base:.3e} at +30 s"
        );
    }

    #[test]
    fn label() {
        assert_eq!(
            OffsetOnlySync::new(100).label(),
            "offset_only/SKaMPI-Offset/100"
        );
    }
}
