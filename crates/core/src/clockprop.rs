//! **ClockPropSync** (paper Algorithm 3): clone the reference process's
//! clock model to all processes of a shared-time-source domain.
//!
//! Valid only when every process in the communicator reads the *same
//! underlying time source* (e.g. all cores of a node whose
//! `clock_getcpuclockid(0)` agree). The reference (communicator rank 0)
//! flattens its — possibly nested — clock model, broadcasts first the
//! size and then the buffer (exactly as in the pseudo-code), and each
//! recipient re-instantiates the decorator chain on top of its own base
//! clock.

use hcs_clock::{flatten_clock, unflatten_clock, BoxClock};
use hcs_mpi::Comm;
use hcs_sim::RankCtx;

use crate::sync::ClockSync;

/// The ClockPropSync algorithm.
#[derive(Debug, Clone, Default)]
pub struct ClockPropSync {
    /// If set, panic when the communicator spans multiple nodes — the
    /// stand-in for the paper's `clock_getcpuclockid(0)` validity check.
    pub verify_shared_source: bool,
}

impl ClockPropSync {
    /// With the shared-time-source validity check enabled.
    pub fn verified() -> Self {
        Self {
            verify_shared_source: true,
        }
    }
}

impl ClockSync for ClockPropSync {
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock {
        if self.verify_shared_source {
            let my_node = ctx.topology().node_of(ctx.rank());
            for &g in comm.members() {
                assert_eq!(
                    ctx.topology().node_of(g),
                    my_node,
                    "ClockPropSync applied across time-source domains (rank {g} is off-node)"
                );
            }
        }
        if comm.size() <= 1 {
            return clk;
        }
        if ctx.obs_on() {
            ctx.obs_enter("clockprop/bcast");
        }
        let out = if comm.rank() == 0 {
            let buffer = flatten_clock(clk.as_ref());
            comm.bcast_f64(ctx, 0, buffer.len() as f64);
            comm.bcast(ctx, 0, &buffer);
            clk
        } else {
            let size = comm.bcast_f64(ctx, 0, 0.0) as usize;
            let buffer = comm.bcast(ctx, 0, &[]);
            assert_eq!(buffer.len(), size, "clock buffer size mismatch");
            unflatten_clock(clk, &buffer)
        };
        ctx.obs_exit();
        out
    }

    fn label(&self) -> String {
        "ClockPropagation".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_clock::{Clock, GlobalClockLM, LinearModel, LocalClock, TimeSource};
    use hcs_sim::machines::{jupiter, testbed};

    #[test]
    fn propagates_the_leader_model_within_a_node() {
        // One node, 4 cores: all share the oscillator, so cloning the
        // leader's model yields identical global clocks.
        let cluster = testbed(1, 4).cluster(1);
        let evals = cluster.run(|ctx| {
            let base = LocalClock::new(ctx, TimeSource::WallCoarse);
            let mut comm = Comm::world(ctx);
            // The leader pretends it was synchronized earlier.
            let clk: BoxClock = if comm.rank() == 0 {
                GlobalClockLM::new(Box::new(base), LinearModel::new(2e-6, -0.5)).boxed()
            } else {
                Box::new(base)
            };
            let mut alg = ClockPropSync::verified();
            let g = alg.sync_clocks(ctx, &mut comm, clk);
            g.true_eval(hcs_sim::SimTime::from_secs(3.0)).raw_seconds()
        });
        for v in &evals {
            assert!((v - evals[0]).abs() < 1e-12, "{evals:?}");
        }
    }

    #[test]
    fn propagates_nested_chains() {
        let cluster = testbed(1, 3).cluster(2);
        let evals = cluster.run(|ctx| {
            let base = LocalClock::new(ctx, TimeSource::WallCoarse);
            let mut comm = Comm::world(ctx);
            let clk: BoxClock = if comm.rank() == 0 {
                let inner =
                    GlobalClockLM::new(Box::new(base), LinearModel::new(1e-6, 0.25)).boxed();
                GlobalClockLM::new(inner, LinearModel::new(-3e-6, 4.0)).boxed()
            } else {
                Box::new(base)
            };
            let mut alg = ClockPropSync::default();
            let g = alg.sync_clocks(ctx, &mut comm, clk);
            g.true_eval(hcs_sim::SimTime::from_secs(10.0)).raw_seconds()
        });
        for v in &evals {
            assert!((v - evals[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn single_member_is_identity() {
        let cluster = testbed(1, 1).cluster(3);
        cluster.run(|ctx| {
            let t = hcs_sim::SimTime::from_secs(1.0);
            let base = LocalClock::new(ctx, TimeSource::WallCoarse);
            let want = base.true_eval(t);
            let mut comm = Comm::world(ctx);
            let mut alg = ClockPropSync::verified();
            let g = alg.sync_clocks(ctx, &mut comm, Box::new(base));
            assert_eq!(g.true_eval(t), want);
        });
    }

    #[test]
    #[should_panic(expected = "across time-source domains")]
    fn verification_rejects_cross_node_use() {
        let cluster = jupiter().with_shape(2, 1, 1).cluster(4);
        cluster.run(|ctx| {
            let base = LocalClock::new(ctx, TimeSource::WallCoarse);
            let mut comm = Comm::world(ctx);
            let mut alg = ClockPropSync::verified();
            let _ = alg.sync_clocks(ctx, &mut comm, Box::new(base));
        });
    }

    #[test]
    fn label() {
        assert_eq!(ClockPropSync::default().label(), "ClockPropagation");
    }
}
