//! `LEARN_CLOCK_MODEL` (paper Algorithm 2): learn a linear drift model
//! between a reference and a client process.

use hcs_clock::{fit_linear_model, Clock, LinearModel};
use hcs_mpi::Comm;
use hcs_sim::{secs, RankCtx, Span};

use crate::offset::OffsetAlgorithm;

/// Parameters of the model-learning step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnParams {
    /// Number of fit points for the regression (the paper's
    /// `nfitpoints`, e.g. 1000).
    pub nfitpoints: usize,
    /// Whether to re-measure and re-anchor the intercept after the
    /// regression (the paper's `recompute_intercept` flag).
    pub recompute_intercept: bool,
    /// Idle time inserted by the client before each fit point.
    ///
    /// The slope accuracy of the regression is governed by the *time
    /// span* the fit points cover (the paper's `1000 × 100` ping-pong
    /// configurations span ~0.5 s). Spanning that window with raw
    /// ping-pongs would cost millions of simulated messages; spacing
    /// fit points out reproduces the span — and thus the slope accuracy
    /// and the synchronization duration — at a fraction of the cost.
    pub spacing_s: Span,
}

impl Default for LearnParams {
    fn default() -> Self {
        Self {
            nfitpoints: 100,
            recompute_intercept: true,
            spacing_s: secs(3e-3),
        }
    }
}

impl LearnParams {
    /// `nfitpoints` with intercept recomputation on.
    pub fn with_fitpoints(nfitpoints: usize) -> Self {
        Self {
            nfitpoints,
            ..Self::default()
        }
    }

    /// The fit window (time span) these parameters produce, assuming
    /// `exchange_s` per ping-pong and `pingpongs` exchanges per point.
    pub fn fit_window_s(&self, pingpongs: usize, exchange_s: Span) -> Span {
        self.nfitpoints as f64 * (self.spacing_s + pingpongs as f64 * exchange_s)
    }
}

/// Learns the linear model of the drift of `p_ref`'s clock relative to
/// `client`'s clock (communicator ranks). Returns `Some(model)` on the
/// client and `None` on the reference; both sides must call this with
/// their own current clock (`clk`) — in HCA3 the reference passes its
/// *global* clock, which is precisely how reference time is pushed down
/// the tree.
pub fn learn_clock_model(
    ctx: &mut RankCtx,
    comm: &Comm,
    offset_alg: &mut dyn OffsetAlgorithm,
    params: LearnParams,
    p_ref: usize,
    client: usize,
    clk: &mut dyn Clock,
) -> Option<LinearModel> {
    let me = comm.rank();
    if me == p_ref {
        for _ in 0..params.nfitpoints {
            let _ = offset_alg.measure_offset(ctx, comm, clk, p_ref, client);
        }
        if params.recompute_intercept {
            // Participate in the client's intercept re-measurement.
            let _ = offset_alg.measure_offset(ctx, comm, clk, p_ref, client);
        }
        None
    } else if me == client {
        let mut xfit = Vec::with_capacity(params.nfitpoints);
        let mut yfit = Vec::with_capacity(params.nfitpoints);
        for _ in 0..params.nfitpoints {
            if params.spacing_s > Span::ZERO {
                // Spread the fit points over the configured window; the
                // reference idles in its matching receive meanwhile.
                ctx.compute(params.spacing_s);
            }
            let o = offset_alg
                .measure_offset(ctx, comm, clk, p_ref, client)
                .expect("client side receives an offset");
            xfit.push(o.timestamp);
            yfit.push(o.offset);
        }
        let mut lm = fit_linear_model(&xfit, &yfit).model;
        if params.recompute_intercept {
            let o = offset_alg
                .measure_offset(ctx, comm, clk, p_ref, client)
                .expect("client side receives an offset");
            lm.reanchor(o.timestamp, o.offset);
        }
        Some(lm)
    } else {
        panic!("learn_clock_model called by rank {me}, neither ref {p_ref} nor client {client}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offset::SkampiOffset;
    use hcs_clock::{GlobalClockLM, LocalClock, Oscillator};
    use hcs_mpi::Comm;
    use hcs_sim::machines::testbed;

    /// Plants a known skew+offset between ref and client; the learned
    /// model must map client readings to ref readings accurately.
    fn learn_planted(recompute: bool) -> (LinearModel, f64) {
        let skew = 0.8e-6; // client clock runs 0.8 ppm slow vs ref
        let offset0 = 250e-6;
        // Jitter-free machine: the measured fit points are exact, so the
        // regression must recover the planted parameters tightly even
        // over the short (~ms) measurement window of this test.
        let cluster = hcs_sim::machines::quiet_testbed(2, 1).cluster(17);
        let res = cluster.run(move |ctx| {
            let comm = Comm::world(ctx);
            let mut alg = SkampiOffset::new(10);
            let params = LearnParams {
                nfitpoints: 60,
                recompute_intercept: recompute,
                spacing_s: Span::ZERO,
            };
            if comm.rank() == 0 {
                let mut clk = GlobalClockLM::new(
                    Box::new(LocalClock::from_oscillator(Oscillator::with_skew(skew), 0)),
                    LinearModel::new(0.0, offset0),
                );
                learn_clock_model(ctx, &comm, &mut alg, params, 0, 1, &mut clk);
                None
            } else {
                let mut clk = LocalClock::from_oscillator(Oscillator::perfect(), 0);
                // Spread fit points over some time to expose the slope.
                learn_clock_model(ctx, &comm, &mut alg, params, 0, 1, &mut clk)
            }
        });
        (res[1].unwrap(), skew)
    }

    #[test]
    fn learn_recovers_slope_and_offset() {
        let (lm, skew) = learn_planted(false);
        // Slope: ref gains `skew` per client second.
        assert!((lm.slope - skew).abs() < 0.5e-6, "slope {:.3e}", lm.slope);
        // Offset near the measurement window (~a few ms of client time).
        let x = hcs_clock::LocalTime::from_raw_seconds(0.005);
        let want = 250e-6 + skew * 0.005;
        assert!(
            (lm.offset_at(x).seconds() - want).abs() < 2e-6,
            "offset {:.3e}",
            lm.offset_at(x)
        );
    }

    #[test]
    fn recompute_intercept_reanchors() {
        let (lm, _) = learn_planted(true);
        let x = hcs_clock::LocalTime::from_raw_seconds(0.005);
        assert!(
            (lm.offset_at(x).seconds() - 250e-6).abs() < 3e-6,
            "offset {:.3e}",
            lm.offset_at(x)
        );
    }

    #[test]
    fn ref_side_returns_none_client_some() {
        let cluster = testbed(2, 1).cluster(18);
        let res = cluster.run(|ctx| {
            let comm = Comm::world(ctx);
            let mut alg = SkampiOffset::new(3);
            let mut clk = LocalClock::from_oscillator(Oscillator::perfect(), 0);
            learn_clock_model(
                ctx,
                &comm,
                &mut alg,
                LearnParams::with_fitpoints(5),
                0,
                1,
                &mut clk,
            )
        });
        assert!(res[0].is_none());
        assert!(res[1].is_some());
    }

    #[test]
    fn default_params_are_sane() {
        let p = LearnParams::default();
        assert!(p.nfitpoints > 0);
        assert!(p.recompute_intercept);
    }
}
