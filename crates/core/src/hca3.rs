//! **HCA3** — the paper's novel clock synchronization algorithm
//! (Algorithm 1, §III-B).
//!
//! HCA3 pushes the reference time *down* a binomial tree in
//! `⌊log₂ p⌋ (+1)` rounds. In each round a process is either a reference
//! (it already holds a global clock model, or *is* the global reference)
//! or a client. Crucially, a reference *emulates the global reference
//! clock* when timestamping: it passes its own `GlobalClockLM` to the
//! offset measurement, so clients directly learn models against the
//! global frame — no model merging, no error-compounding composition
//! (the PulseSync idea adapted to MPI).

use hcs_clock::{BoxClock, GlobalClockLM};
use hcs_mpi::Comm;
use hcs_sim::RankCtx;

use crate::learn::{learn_clock_model, LearnParams};
use crate::offset::OffsetSpec;
use crate::sync::ClockSync;

/// The HCA3 synchronization algorithm.
#[derive(Debug, Clone)]
pub struct Hca3 {
    /// Regression parameters (`nfitpoints`, `recompute_intercept`).
    pub params: LearnParams,
    /// Which offset estimator to use as the building block.
    pub offset: OffsetSpec,
}

impl Default for Hca3 {
    fn default() -> Self {
        Self {
            params: LearnParams::default(),
            offset: OffsetSpec::Skampi { nexchanges: 10 },
        }
    }
}

impl Hca3 {
    /// HCA3 with explicit parameters.
    pub fn new(params: LearnParams, offset: OffsetSpec) -> Self {
        Self { params, offset }
    }

    /// The paper's well-performing configuration scaled by the caller:
    /// `hca3/recompute intercept/<nfitpoints>/SKaMPI-Offset/<pingpongs>`.
    pub fn skampi(nfitpoints: usize, pingpongs: usize) -> Self {
        Self {
            params: LearnParams {
                nfitpoints,
                recompute_intercept: true,
                ..LearnParams::default()
            },
            offset: OffsetSpec::Skampi {
                nexchanges: pingpongs,
            },
        }
    }

    /// Overrides the fit-point spacing (see `LearnParams::spacing_s`).
    pub fn with_spacing(mut self, spacing_s: hcs_sim::Span) -> Self {
        self.params.spacing_s = spacing_s;
        self
    }
}

impl ClockSync for Hca3 {
    fn sync_clocks(&mut self, ctx: &mut RankCtx, comm: &mut Comm, clk: BoxClock) -> BoxClock {
        let nprocs = comm.size();
        let r = comm.rank();
        let mut offset_alg = self.offset.build();

        let nrounds = (usize::BITS - 1 - nprocs.leading_zeros().min(usize::BITS - 1)) as usize;
        let nrounds = if nprocs <= 1 { 0 } else { nrounds };
        let max_power = 1usize << nrounds;

        // Default dummy clock (paper line 4) — keeps every rank's return
        // type uniform even when it never takes part in a round.
        let mut my_clk: BoxClock = GlobalClockLM::dummy(clk).boxed();
        if nprocs <= 1 {
            return my_clk;
        }

        // Step 1: top-down over the binomial tree spanning ranks
        // 0 .. max_power-1.
        for i in (1..=nrounds).rev() {
            let running_power = 1usize << i;
            let next_power = 1usize << (i - 1);
            if r >= max_power {
                break;
            }
            if r.is_multiple_of(running_power) {
                // Reference for this round: emulate the global clock.
                let other_rank = r + next_power;
                if other_rank < nprocs {
                    if ctx.obs_on() {
                        ctx.obs_enter_seq("hca3/round/ref", i as u32);
                    }
                    learn_clock_model(
                        ctx,
                        comm,
                        offset_alg.as_mut(),
                        self.params,
                        r,
                        other_rank,
                        &mut my_clk,
                    );
                    ctx.obs_exit();
                }
            } else if r % running_power == next_power {
                // Client: learn my drift against the (emulated) global
                // clock of the reference.
                let other_rank = r - next_power;
                if ctx.obs_on() {
                    ctx.obs_enter_seq("hca3/round/client", i as u32);
                }
                let lm = learn_clock_model(
                    ctx,
                    comm,
                    offset_alg.as_mut(),
                    self.params,
                    other_rank,
                    r,
                    &mut my_clk,
                )
                .expect("client obtains a model");
                my_clk = GlobalClockLM::new(my_clk, lm).boxed();
                ctx.obs_exit();
            }
        }

        // Step 2: ranks max_power .. nprocs-1 sync against their
        // counterpart r - max_power (which now holds a global clock).
        if r >= max_power {
            let other_rank = r - max_power;
            if ctx.obs_on() {
                ctx.obs_enter("hca3/step2/client");
            }
            let lm = learn_clock_model(
                ctx,
                comm,
                offset_alg.as_mut(),
                self.params,
                other_rank,
                r,
                &mut my_clk,
            )
            .expect("client obtains a model");
            my_clk = GlobalClockLM::new(my_clk, lm).boxed();
            ctx.obs_exit();
        } else if r < nprocs - max_power {
            let other_rank = r + max_power;
            if ctx.obs_on() {
                ctx.obs_enter("hca3/step2/ref");
            }
            learn_clock_model(
                ctx,
                comm,
                offset_alg.as_mut(),
                self.params,
                r,
                other_rank,
                &mut my_clk,
            );
            ctx.obs_exit();
        }
        my_clk
    }

    fn label(&self) -> String {
        let ri = if self.params.recompute_intercept {
            "recompute_intercept/"
        } else {
            ""
        };
        format!(
            "hca3/{ri}{}/{}",
            self.params.nfitpoints,
            self.offset.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::run_sync;
    use hcs_clock::{Clock, LocalClock, TimeSource};
    use hcs_sim::machines::{quiet_testbed, testbed};

    /// Runs HCA3 and returns the true global-clock error of each rank
    /// relative to rank 0, evaluated at the same true instant.
    fn hca3_errors(nodes: usize, cores: usize, seed: u64, quiet: bool) -> Vec<f64> {
        let machine = if quiet {
            quiet_testbed(nodes, cores)
        } else {
            testbed(nodes, cores)
        };
        let cluster = machine.cluster(seed);
        let evals = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hca3::skampi(40, 10);
            let out = run_sync(&mut alg, ctx, &mut comm, Box::new(clk));
            // Evaluate the global clock at a fixed true time beyond all
            // ranks' sync completion.
            out.clock
                .true_eval(hcs_sim::SimTime::from_secs(5.0))
                .raw_seconds()
        });
        let reference = evals[0];
        evals.iter().map(|v| v - reference).collect()
    }

    #[test]
    fn perfect_network_syncs_perfectly() {
        // Quiet testbed has ideal clocks (zero skew), so models should be
        // near-identity and errors tiny.
        for err in hca3_errors(4, 2, 1, true) {
            assert!(err.abs() < 1e-7, "error {err:.3e}");
        }
    }

    #[test]
    fn realistic_network_syncs_to_microseconds() {
        // Commodity clocks drift ~0.5 ppm; right after sync the global
        // clocks must agree to a few microseconds (paper Fig. 3a).
        for (r, err) in hca3_errors(8, 2, 2, false).iter().enumerate() {
            assert!(err.abs() < 5e-6, "rank {r} error {err:.3e}");
        }
    }

    #[test]
    fn non_power_of_two_sizes_work() {
        for p in [3usize, 5, 6, 7] {
            let errs = hca3_errors(p, 1, 10 + p as u64, false);
            assert_eq!(errs.len(), p);
            for (r, err) in errs.iter().enumerate() {
                assert!(err.abs() < 5e-6, "p={p} rank {r} err {err:.3e}");
            }
        }
    }

    #[test]
    fn duration_scales_logarithmically() {
        // Doubling p should add ~one round, not double the duration.
        let dur = |nodes: usize| {
            let cluster = testbed(nodes, 1).cluster(3);
            let outs = cluster.run(|ctx| {
                let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
                let mut comm = Comm::world(ctx);
                let mut alg = Hca3::skampi(20, 5);
                run_sync(&mut alg, ctx, &mut comm, Box::new(clk))
                    .duration
                    .seconds()
            });
            outs.into_iter().fold(0.0f64, f64::max)
        };
        let d8 = dur(8);
        let d16 = dur(16);
        // log2(16)/log2(8) = 4/3; allow generous slack but rule out O(p).
        assert!(d16 < d8 * 1.8, "d8={d8:.4} d16={d16:.4}");
    }

    #[test]
    fn single_rank_returns_dummy() {
        let cluster = testbed(1, 1).cluster(4);
        cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = Hca3::default();
            let g = alg.sync_clocks(ctx, &mut comm, Box::new(clk));
            // Dummy wrap: identical readings to the base clock.
            let t = hcs_sim::SimTime::from_secs(1.0);
            assert_eq!(
                g.true_eval(t),
                LocalClock::new(ctx, TimeSource::MpiWtime).true_eval(t)
            );
        });
    }

    #[test]
    fn label_matches_paper_style() {
        let alg = Hca3::skampi(1000, 100);
        assert_eq!(
            alg.label(),
            "hca3/recompute_intercept/1000/SKaMPI-Offset/100"
        );
    }
}
