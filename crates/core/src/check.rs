//! `Check-Global-Clock` (paper Algorithm 6): evaluate the accuracy of a
//! logical global clock right after synchronization and again after a
//! waiting period, by measuring the offset between the root's and every
//! client's *global* clocks.
//!
//! Because the hardware is simulated, a second, oracle-based view is
//! available: [`oracle_offset`] compares two clocks' noise-free readings
//! at the same true instant. Experiments report the paper's estimator;
//! tests cross-check it against the oracle.

use hcs_clock::{busy_wait_until, Clock, Span};
use hcs_mpi::Comm;
use hcs_sim::{rngx, RankCtx, SimTime, Tag};

use crate::offset::OffsetAlgorithm;

/// Tag under which clients report their measured offsets to the root.
const TAG_REPORT: Tag = 0x0180;

/// Result of one accuracy check, collected at the root.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// `(comm_rank, offset_after_sync, offset_after_wait)` per checked
    /// client (reference − client).
    pub entries: Vec<(usize, Span, Span)>,
    /// The waiting period between the two measurement phases.
    pub wait_time: Span,
}

impl AccuracyReport {
    /// Maximum absolute clock offset right after synchronization.
    pub fn max_abs_at_sync(&self) -> Span {
        self.entries
            .iter()
            .map(|e| e.1.abs())
            .fold(Span::ZERO, Span::max)
    }

    /// Maximum absolute clock offset after the waiting period.
    pub fn max_abs_after_wait(&self) -> Span {
        self.entries
            .iter()
            .map(|e| e.2.abs())
            .fold(Span::ZERO, Span::max)
    }
}

/// Which clients a check with `sample_frac` will visit (deterministic in
/// the master seed; every rank computes the same list locally).
fn sampled_clients(master_seed: u64, p: usize, sample_frac: f64) -> Vec<usize> {
    let mut rng = rngx::stream_rng(master_seed, 0x6A11);
    let sampled: Vec<usize> = (1..p).filter(|_| rng.next_f64() < sample_frac).collect();
    if sampled.is_empty() && p > 1 {
        vec![p - 1]
    } else {
        sampled
    }
}

/// Runs the accuracy check collectively. The root (comm rank 0) returns
/// `Some(report)`; clients return `None`.
///
/// Protocol per phase (all offsets end up at the root, as in Alg. 6):
/// the root serves one offset measurement per sampled client (root as
/// reference clock), and the client ships the resulting offset back.
///
/// `sample_frac < 1.0` checks only a deterministic random sample of the
/// clients (the paper uses 10 % on the 16k-process Titan runs). All
/// ranks must pass the same `sample_frac`.
pub fn check_clock_accuracy(
    ctx: &mut RankCtx,
    comm: &mut Comm,
    g_clk: &mut dyn Clock,
    offset_alg: &mut dyn OffsetAlgorithm,
    wait_time: Span,
    sample_frac: f64,
) -> Option<AccuracyReport> {
    let me = comm.rank();
    let p = comm.size();
    if p <= 1 {
        return (me == 0).then(|| AccuracyReport {
            entries: Vec::new(),
            wait_time,
        });
    }
    let sampled = sampled_clients(ctx.master_seed(), p, sample_frac);

    if me == 0 {
        let timestamp = g_clk.get_time(ctx);
        let mut first = Vec::with_capacity(sampled.len());
        for &c in &sampled {
            offset_alg.measure_offset(ctx, comm, g_clk, 0, c);
            first.push(Span::from_secs(comm.recv_t::<f64>(ctx, c, TAG_REPORT)));
        }
        // Busy-wait on the global clock, as the pseudo-code does.
        busy_wait_until(g_clk, ctx, timestamp + wait_time);
        let mut entries = Vec::with_capacity(sampled.len());
        for (&c, &off0) in sampled.iter().zip(&first) {
            offset_alg.measure_offset(ctx, comm, g_clk, 0, c);
            let off1 = Span::from_secs(comm.recv_t::<f64>(ctx, c, TAG_REPORT));
            entries.push((c, off0, off1));
        }
        Some(AccuracyReport { entries, wait_time })
    } else {
        if sampled.contains(&me) {
            for _phase in 0..2 {
                let o = offset_alg
                    .measure_offset(ctx, comm, g_clk, 0, me)
                    .expect("client obtains an offset");
                comm.send_t(ctx, 0, TAG_REPORT, o.offset.seconds());
            }
        }
        None
    }
}

/// Oracle: the difference between two clocks' noise-free readings at the
/// same true simulated time (`a − b`).
pub fn oracle_offset(a: &dyn Clock, b: &dyn Clock, t: SimTime) -> Span {
    a.true_eval(t) - b.true_eval(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hca3::Hca3;
    use crate::offset::SkampiOffset;
    use crate::sync::run_sync;
    use hcs_clock::{GlobalClockLM, LinearModel, LocalClock, TimeSource};
    use hcs_sim::machines::testbed;
    use hcs_sim::secs;

    #[test]
    fn reports_planted_offsets() {
        // Clients get identical clocks; client 2 is deliberately 50 us
        // behind, which the check must report as +50 us (ref - client).
        let cluster = testbed(4, 1).cluster(1);
        let reports = cluster.run(|ctx| {
            let base = LocalClock::from_oscillator(hcs_clock::Oscillator::perfect(), 0);
            let mut clk: hcs_clock::BoxClock = if ctx.rank() == 2 {
                GlobalClockLM::new(Box::new(base), LinearModel::new(0.0, -50e-6)).boxed()
            } else {
                Box::new(base)
            };
            let mut comm = Comm::world(ctx);
            let mut alg = SkampiOffset::new(10);
            check_clock_accuracy(ctx, &mut comm, clk.as_mut(), &mut alg, secs(0.05), 1.0)
        });
        let report = reports[0].as_ref().unwrap();
        assert_eq!(report.entries.len(), 3);
        for &(c, off0, off1) in &report.entries {
            let want = if c == 2 { 50e-6 } else { 0.0 };
            assert!(
                (off0.seconds() - want).abs() < 2e-6,
                "client {c}: off0 {off0:.3e}"
            );
            assert!(
                (off1.seconds() - want).abs() < 2e-6,
                "client {c}: off1 {off1:.3e}"
            );
        }
    }

    #[test]
    fn estimator_agrees_with_oracle_after_hca3() {
        let cluster = testbed(4, 2).cluster(2);
        let out = cluster.run(|ctx| {
            let clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut sync = Hca3::skampi(40, 10);
            let mut g = run_sync(&mut sync, ctx, &mut comm, Box::new(clk)).clock;
            let mut alg = SkampiOffset::new(10);
            let report =
                check_clock_accuracy(ctx, &mut comm, g.as_mut(), &mut alg, secs(0.02), 1.0);
            // Export the oracle view at a common instant.
            (report, g.true_eval(SimTime::from_secs(2.0)).raw_seconds())
        });
        let report = out[0].0.as_ref().unwrap();
        let ref_eval = out[0].1;
        for &(c, off0, _) in &report.entries {
            let oracle = ref_eval - out[c].1;
            assert!(
                (off0.seconds() - oracle).abs() < 3e-6,
                "client {c}: estimator {off0:.3e} vs oracle {oracle:.3e}"
            );
        }
    }

    #[test]
    fn drift_grows_with_wait_time() {
        // With unsynchronized skewed clocks, the offset after a waiting
        // period must exceed the offset right after the (fake) sync.
        let cluster = testbed(2, 1).cluster(3);
        let reports = cluster.run(|ctx| {
            let skew = if ctx.rank() == 1 { 5e-6 } else { 0.0 };
            let mut clk = LocalClock::from_oscillator(hcs_clock::Oscillator::with_skew(skew), 0);
            let mut comm = Comm::world(ctx);
            let mut alg = SkampiOffset::new(10);
            check_clock_accuracy(ctx, &mut comm, &mut clk, &mut alg, secs(1.0), 1.0)
        });
        let r = reports[0].as_ref().unwrap();
        let (_, off0, off1) = r.entries[0];
        // Client gains 5 us per second; after 1 s the ref-client offset
        // shrinks by ~5 us (or grows in magnitude, depending on sign).
        assert!(
            (off1 - off0).abs() > secs(3e-6),
            "off0 {off0:.3e} off1 {off1:.3e}"
        );
    }

    #[test]
    fn sampling_reduces_checked_clients() {
        let all = sampled_clients(7, 100, 1.0);
        assert_eq!(all.len(), 99);
        let some = sampled_clients(7, 100, 0.1);
        assert!(
            !some.is_empty() && some.len() < 40,
            "sampled {}",
            some.len()
        );
        // Deterministic.
        assert_eq!(some, sampled_clients(7, 100, 0.1));
    }

    #[test]
    fn singleton_comm_returns_empty_report() {
        let cluster = testbed(1, 1).cluster(4);
        let reports = cluster.run(|ctx| {
            let mut clk = LocalClock::new(ctx, TimeSource::MpiWtime);
            let mut comm = Comm::world(ctx);
            let mut alg = SkampiOffset::new(2);
            check_clock_accuracy(ctx, &mut comm, &mut clk, &mut alg, secs(0.1), 1.0)
        });
        assert!(reports[0].as_ref().unwrap().entries.is_empty());
    }
}
